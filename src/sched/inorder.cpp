#include "src/sched/inorder.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "src/common/arena.hpp"
#include "src/common/prng.hpp"
#include "src/sched/eval_scratch.hpp"
#include "src/sched/periodic_cg.hpp"

namespace fsw {
namespace {

constexpr double kUnbounded = std::numeric_limits<double>::infinity();

/// Value-only evaluation of one candidate: build the constraint system into
/// the worker's scratch, solve, and return only the objective. The winner
/// is re-evaluated in full exactly once at the end of a search — solves are
/// pure, so the deferred extraction is bit-identical and the hot loop never
/// materializes an OperationList.
using ValueFn = std::optional<double> (*)(const EvalContext&, EvalScratch&,
                                          PortOrdersView, double,
                                          std::atomic<std::size_t>*);

/// Full evaluation (value + operation list) of one candidate — the cold
/// path behind the public *ForOrders entry points.
using ForOrdersFn = std::optional<OrchestrationResult> (*)(
    const Application&, const ExecutionGraph&, const PortOrders&, double,
    std::atomic<std::size_t>*);

std::optional<double> periodValue(const EvalContext& ctx, EvalScratch& s,
                                  PortOrdersView orders, double upperBound,
                                  std::atomic<std::size_t>* boundAborts) {
  const std::size_t cCap = s.pcg.constraintCapacity();
  const std::size_t xCap = s.x.capacity();
  ++s.probes;
  const double lo = ctx.busyLowerBound();
  const double hi = 2.0 * ctx.totalDuration() + 1.0;
  std::optional<double> value;
  if (upperBound < hi && analyticallyDominated(lo, upperBound)) {
    // Incumbent pruning: the minimal period is >= the busy lower bound, so
    // this solve cannot strictly beat (or tie) the incumbent.
    if (boundAborts != nullptr) {
      boundAborts->fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    ctx.buildSystem(orders, s);
    if (upperBound < hi && !s.pcg.feasibleInto(upperBound, s.x)) {
      // By monotone feasibility the minimal period is > upperBound.
      if (boundAborts != nullptr) {
        boundAborts->fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      value = s.pcg.minLambdaInto(lo, hi, s.x);
    }
  }
  if (s.pcg.constraintCapacity() != cCap) ++s.heapAllocs;
  if (s.x.capacity() != xCap) ++s.heapAllocs;
  return value;
}

std::optional<double> latencyValue(const EvalContext& ctx, EvalScratch& s,
                                   PortOrdersView orders, double upperBound,
                                   std::atomic<std::size_t>* boundAborts) {
  const std::size_t cCap = s.pcg.constraintCapacity();
  const std::size_t xCap = s.x.capacity();
  ++s.probes;
  std::optional<double> value;
  if (std::isfinite(upperBound) &&
      analyticallyDominated(ctx.busyLowerBound(), upperBound)) {
    // Every operation of a node is serialized on its one port within the
    // single data set's span, so the busy time lower bounds the latency.
    if (boundAborts != nullptr) {
      boundAborts->fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    ctx.buildSystem(orders, s);
    if (s.pcg.solveInto(/*lambda=*/0.0, s.x)) {  // lambda unused when acyclic
      value = ctx.latencyOf(s.x);
    }
  }
  if (s.pcg.constraintCapacity() != cCap) ++s.heapAllocs;
  if (s.x.capacity() != xCap) ++s.heapAllocs;
  return value;
}

OrchestrationResult betterOf(OrchestrationResult a, OrchestrationResult b) {
  return (b.value < a.value) ? std::move(b) : std::move(a);
}

/// Winner of a value-only search: objective plus a snapshot of the orders
/// that achieved it (three flat vectors — cheap to copy on improvement).
struct ValueWinner {
  double value = std::numeric_limits<double>::infinity();
  PortOrders orders;

  void offer(double v, PortOrdersView po) {
    if (v < value) {
      value = v;
      orders = PortOrders(po);
    }
  }
};

/// One seeded hill-climbing chain of random adjacent swaps in one node's
/// receive or send order. Pure function of (start, seed), so restarts can
/// run on any thread and still reproduce. Runs entirely on the calling
/// thread over one scratch.
ValueWinner localSearchChain(const EvalContext& ctx, EvalScratch& s,
                             ValueFn evalValue, const ValueWinner& start,
                             std::size_t iters, std::uint64_t seed) {
  ValueWinner best = start;
  Prng rng(seed);
  PortOrders current = start.orders;
  double currentValue = start.value;
  const std::size_t n = ctx.nodeCount();
  for (std::size_t it = 0; it < iters; ++it) {
    const NodeId i = static_cast<NodeId>(
        rng.uniformInt(0, static_cast<std::int64_t>(n) - 1));
    const bool inSide = rng.bernoulli(0.5);
    auto seq = inSide ? current.in(i) : current.out(i);
    if (seq.size() < 2) continue;
    const auto pos = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(seq.size()) - 2));
    std::swap(seq[pos], seq[pos + 1]);
    const auto v = evalValue(ctx, s, current, kUnbounded, nullptr);
    if (v && *v < currentValue - 1e-12) {
      currentValue = *v;
      best.offer(*v, current);
    } else {
      std::swap(seq[pos], seq[pos + 1]);  // revert
    }
  }
  return best;
}

/// Shared order-search driver for period and latency objectives. All
/// parallel reduces are index-ordered with strict-less acceptance, so the
/// winner (value, then earliest enumeration index / restart) is identical
/// with and without a pool. The inner loop is value-only over per-worker
/// scratch; the winning orders are re-evaluated in full exactly once.
OrchestrationResult searchOrders(const Application& app,
                                 const ExecutionGraph& graph,
                                 const OrchestrationOptions& opt, bool cyclic,
                                 ValueFn evalValue, ForOrdersFn evalFull) {
  const EvalContext ctx(app, graph, cyclic);
  WorkerScratchPool<EvalScratch> scratch(opt.pool);
  ValueWinner best;

  // Aggregates the per-worker counters into the engine-facing atomics once,
  // after all evaluations completed.
  MonotonicArena blockArena;
  auto publishStats = [&] {
    std::size_t probes = 0;
    std::size_t allocs = blockArena.heapAllocs();
    scratch.forEach([&](EvalScratch& s) {
      probes += s.probes;
      allocs += s.heapAllocs + s.arena.heapAllocs();
    });
    if (opt.evalProbes != nullptr) {
      opt.evalProbes->fetch_add(probes, std::memory_order_relaxed);
    }
    if (opt.scratchHeapAllocs != nullptr) {
      opt.scratchHeapAllocs->fetch_add(allocs, std::memory_order_relaxed);
    }
    if (opt.arenaBytesHighWater != nullptr) {
      atomicMaxRelaxed(*opt.arenaBytesHighWater, blockArena.highWater());
    }
  };
  auto finish = [&]() -> OrchestrationResult {
    publishStats();
    if (!std::isfinite(best.value)) {
      OrchestrationResult none;
      none.value = std::numeric_limits<double>::infinity();
      return none;
    }
    // Single full re-evaluation of the winner; solves are pure, so the
    // value matches the probe bit-for-bit.
    auto full = evalFull(app, graph, best.orders, kUnbounded, nullptr);
    if (!full) {  // unreachable: the winner solved feasibly when probed
      OrchestrationResult none;
      none.value = std::numeric_limits<double>::infinity();
      return none;
    }
    return std::move(*full);
  };

  const std::size_t combos = countPortOrders(graph, opt.exactCap);
  if (combos < opt.exactCap) {
    // Materialize the enumeration in flat chunks (one shared offset table,
    // one arena-backed data buffer recycled across flushes) and fan the
    // constraint-system solves out over the pool.
    const PortOrders proto = PortOrders::canonical(graph);
    const std::size_t stride = proto.flatSize();
    const std::size_t blockCap = std::min<std::size_t>(combos, 1024);
    ArenaVector<NodeId> blockData(&blockArena);
    blockData.reserve(blockCap * stride);
    std::size_t count = 0;
    auto viewOf = [&](std::size_t i) {
      return PortOrdersView(proto.size(), proto.inOffsets(),
                            proto.outOffsets(), blockData.data() + i * stride);
    };
    auto flush = [&] {
      auto results = parallelMap<std::optional<double>>(
          opt.pool, count, [&](std::size_t i) {
            auto s = scratch.lease();
            return evalValue(ctx, *s, viewOf(i), opt.upperBound,
                             opt.boundAborts);
          });
      for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i]) best.offer(*results[i], viewOf(i));
      }
      blockData.clear();  // keeps the buffer
      count = 0;
    };
    forEachPortOrders(graph, opt.exactCap, [&](const PortOrders& po) {
      blockData.append(po.flatData(), stride);
      ++count;
      if (count >= 1024) flush();
      return true;
    });
    flush();
    return finish();
  }

  // The heuristic path runs unbounded on purpose: local search can descend
  // *through* values above the incumbent to a winner below it, so pruning
  // its starts or steps could degrade the returned plan. The incumbent
  // bound only prunes the exhaustive path above, where every order is
  // evaluated independently and a pruned (dominated) order can never be
  // the returned winner.
  for (const PortOrders& start :
       {PortOrders::heuristic(app, graph), PortOrders::canonical(graph)}) {
    auto s = scratch.lease();
    if (auto v = evalValue(ctx, *s, start, kUnbounded, nullptr)) {
      best.offer(*v, start);
    }
  }
  if (!std::isfinite(best.value)) return finish();

  // Independent seeded restarts from the common start, fanned over the pool.
  const ValueWinner start = best;
  const std::size_t restarts = std::max<std::size_t>(1, opt.localSearchRestarts);
  auto chains = parallelMap<ValueWinner>(
      opt.pool, restarts, [&](std::size_t r) {
        auto s = scratch.lease();
        return localSearchChain(ctx, *s, evalValue, start,
                                opt.localSearchIters, opt.seed + r);
      });
  for (auto& r : chains) best.offer(r.value, r.orders);
  return finish();
}

}  // namespace

std::optional<OrchestrationResult> inorderPeriodForOrders(
    const Application& app, const ExecutionGraph& graph,
    const PortOrders& orders, double upperBound,
    std::atomic<std::size_t>* boundAborts) {
  const EvalContext ctx(app, graph, /*cyclic=*/true);
  EvalScratch s;
  const double lo = ctx.busyLowerBound();
  const double hi = 2.0 * ctx.totalDuration() + 1.0;
  if (upperBound < hi && analyticallyDominated(lo, upperBound)) {
    // Incumbent pruning: the minimal period is >= the busy lower bound, and
    // by monotone feasibility it is > upperBound whenever the system is
    // infeasible at upperBound. Either way this solve cannot strictly beat
    // (or tie) the incumbent, so skip the binary search entirely. Survivors
    // run the untouched [lo, hi] search and return bit-identical values.
    if (boundAborts != nullptr) {
      boundAborts->fetch_add(1, std::memory_order_relaxed);
    }
    return std::nullopt;
  }
  ctx.buildSystem(orders, s);
  if (upperBound < hi && !s.pcg.feasibleInto(upperBound, s.x)) {
    if (boundAborts != nullptr) {
      boundAborts->fetch_add(1, std::memory_order_relaxed);
    }
    return std::nullopt;
  }
  const auto lambda = s.pcg.minLambdaInto(lo, hi, s.x);
  if (!lambda) return std::nullopt;
  OrchestrationResult out;
  out.value = *lambda;
  out.ol = ctx.extract(s.x, *lambda);
  out.orders = orders;
  return out;
}

std::optional<OperationList> inorderScheduleAtLambda(const Application& app,
                                                     const ExecutionGraph& graph,
                                                     const PortOrders& orders,
                                                     double lambda) {
  const EvalContext ctx(app, graph, /*cyclic=*/true);
  EvalScratch s;
  ctx.buildSystem(orders, s);
  if (!s.pcg.solveInto(lambda, s.x)) return std::nullopt;
  return ctx.extract(s.x, lambda);
}

std::optional<OrchestrationResult> oneportLatencyForOrders(
    const Application& app, const ExecutionGraph& graph,
    const PortOrders& orders, double upperBound,
    std::atomic<std::size_t>* boundAborts) {
  const EvalContext ctx(app, graph, /*cyclic=*/false);
  EvalScratch s;
  // Incumbent pruning: every operation of a node is serialized on its one
  // port within the single data set's span, so the per-node busy time lower
  // bounds the latency for any orders. The finiteness guard keeps the
  // busy-time comparison off unbounded searches.
  if (std::isfinite(upperBound) &&
      analyticallyDominated(ctx.busyLowerBound(), upperBound)) {
    if (boundAborts != nullptr) {
      boundAborts->fetch_add(1, std::memory_order_relaxed);
    }
    return std::nullopt;
  }
  ctx.buildSystem(orders, s);
  if (!s.pcg.solveInto(/*lambda=*/0.0, s.x)) return std::nullopt;
  OrchestrationResult out;
  out.ol = ctx.extract(s.x, /*lambda=*/1.0);
  out.value = out.ol.latency();
  // Serialize consecutive data sets: P = L (Section 2.2, "Latency").
  out.ol.setLambda(out.value);
  out.orders = orders;
  return out;
}

OrchestrationResult inorderOrchestratePeriod(const Application& app,
                                             const ExecutionGraph& graph,
                                             const OrchestrationOptions& opt) {
  return searchOrders(app, graph, opt, /*cyclic=*/true, &periodValue,
                      &inorderPeriodForOrders);
}

OrchestrationResult oneportOrchestrateLatency(
    const Application& app, const ExecutionGraph& graph,
    const OrchestrationOptions& opt) {
  OrchestrationResult best = searchOrders(app, graph, opt, /*cyclic=*/false,
                                          &latencyValue,
                                          &oneportLatencyForOrders);
  // The list-scheduling packing is often much stronger than order search on
  // communication-bound graphs (e.g. counter-example B.2).
  if (auto r =
          oneportLatencyForOrders(app, graph, PortOrders::listLatency(app, graph),
                                  opt.upperBound, opt.boundAborts)) {
    best = betterOf(std::move(best), std::move(*r));
  }
  return best;
}

}  // namespace fsw
