#include "src/sched/inorder.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "src/common/prng.hpp"
#include "src/core/cost_model.hpp"
#include "src/sched/periodic_cg.hpp"

namespace fsw {
namespace {

using Var = PeriodicConstraintGraph::Var;
using CommKey = std::pair<NodeId, NodeId>;

/// The INORDER rule set with fixed port orders as a difference-constraint
/// system. With `cyclic` false the wrap-around constraints are dropped,
/// which models the single-data-set (latency) regime.
struct System {
  PeriodicConstraintGraph pcg;
  std::map<CommKey, Var> commVar;
  std::map<CommKey, double> commDur;
  std::vector<Var> calcVar;
  std::vector<double> calcDur;

  System(const Application& app, const ExecutionGraph& graph,
         const PortOrders& orders, bool cyclic) {
    const CostModel costs(app, graph);
    const std::size_t n = graph.size();

    calcVar.resize(n);
    calcDur.resize(n);
    for (NodeId i = 0; i < n; ++i) {
      calcVar[i] = pcg.addVariable();
      calcDur[i] = costs.at(i).ccomp;
    }
    auto commOf = [&](NodeId from, NodeId to) -> Var {
      const CommKey key{from, to};
      const auto it = commVar.find(key);
      if (it != commVar.end()) return it->second;
      const Var v = pcg.addVariable();
      commVar.emplace(key, v);
      commDur.emplace(key, from == kWorld ? 1.0 : costs.at(from).sigmaOut);
      return v;
    };

    for (NodeId i = 0; i < n; ++i) {
      const auto& ins = orders.in[i];
      const auto& outs = orders.out[i];
      // Receive chain.
      for (std::size_t t = 0; t + 1 < ins.size(); ++t) {
        const Var a = commOf(ins[t], i);
        const Var b = commOf(ins[t + 1], i);
        pcg.addConstraint(a, b, commDur.at({ins[t], i}));
      }
      // Computation after the last receive.
      if (!ins.empty()) {
        const NodeId last = ins.back();
        const Var v = commOf(last, i);
        pcg.addConstraint(v, calcVar[i], commDur.at({last, i}));
      }
      // Send chain after the computation.
      if (!outs.empty()) {
        const Var first = commOf(i, outs.front());
        pcg.addConstraint(calcVar[i], first, calcDur[i]);
      }
      for (std::size_t t = 0; t + 1 < outs.size(); ++t) {
        const Var a = commOf(i, outs[t]);
        const Var b = commOf(i, outs[t + 1]);
        pcg.addConstraint(a, b, commDur.at({i, outs[t]}));
      }
      // Wrap-around (Appendix A constraint (1)): the last send of data set n
      // ends before the first receive of data set n+1 begins.
      if (cyclic && !ins.empty() && !outs.empty()) {
        const NodeId lastOut = outs.back();
        const Var out = commOf(i, lastOut);
        const Var in = commOf(ins.front(), i);
        pcg.addConstraint(out, in, commDur.at({i, lastOut}), /*k=*/1);
      }
    }
  }

  /// Per-node busy time: a lower bound on any feasible lambda.
  [[nodiscard]] double busyLowerBound(const ExecutionGraph& graph) const {
    double lb = 0.0;
    for (NodeId i = 0; i < graph.size(); ++i) {
      double busy = calcDur[i];
      for (const auto& [key, d] : commDur) {
        if (key.first == i || key.second == i) busy += d;
      }
      lb = std::max(lb, busy);
    }
    return lb;
  }

  [[nodiscard]] double totalDuration() const {
    double s = 0.0;
    for (const double d : calcDur) s += d;
    for (const auto& [key, d] : commDur) s += d;
    return s;
  }

  [[nodiscard]] OperationList extract(const std::vector<double>& x,
                                      double lambda) const {
    OperationList ol(calcVar.size(), lambda);
    for (NodeId i = 0; i < calcVar.size(); ++i) {
      ol.setCalc(i, x[calcVar[i]], x[calcVar[i]] + calcDur[i]);
    }
    for (const auto& [key, v] : commVar) {
      ol.setComm(key.first, key.second, x[v], x[v] + commDur.at(key));
    }
    return ol;
  }
};

OrchestrationResult betterOf(OrchestrationResult a, OrchestrationResult b) {
  return (b.value < a.value) ? std::move(b) : std::move(a);
}

constexpr double kUnbounded = std::numeric_limits<double>::infinity();

using ForOrdersFn = std::optional<OrchestrationResult> (*)(
    const Application&, const ExecutionGraph&, const PortOrders&, double,
    std::atomic<std::size_t>*);

/// One seeded hill-climbing chain of random adjacent swaps in one node's
/// receive or send order. Pure function of (start, seed), so restarts can
/// run on any thread and still reproduce.
OrchestrationResult localSearchChain(const Application& app,
                                     const ExecutionGraph& graph,
                                     ForOrdersFn evalOrders,
                                     const OrchestrationResult& start,
                                     std::size_t iters, std::uint64_t seed) {
  OrchestrationResult best = start;
  Prng rng(seed);
  PortOrders current = start.orders;
  double currentValue = start.value;
  for (std::size_t it = 0; it < iters; ++it) {
    const NodeId i = static_cast<NodeId>(
        rng.uniformInt(0, static_cast<std::int64_t>(graph.size()) - 1));
    const bool inSide = rng.bernoulli(0.5);
    auto& seq = inSide ? current.in[i] : current.out[i];
    if (seq.size() < 2) continue;
    const auto pos = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(seq.size()) - 2));
    std::swap(seq[pos], seq[pos + 1]);
    const auto r = evalOrders(app, graph, current, kUnbounded, nullptr);
    if (r && r->value < currentValue - 1e-12) {
      currentValue = r->value;
      best = betterOf(std::move(best), OrchestrationResult(*r));
    } else {
      std::swap(seq[pos], seq[pos + 1]);  // revert
    }
  }
  return best;
}

/// Shared order-search driver for period and latency objectives. All
/// parallel reduces are index-ordered with strict-less acceptance, so the
/// winner (value, then earliest enumeration index / restart) is identical
/// with and without a pool.
OrchestrationResult searchOrders(const Application& app,
                                 const ExecutionGraph& graph,
                                 const OrchestrationOptions& opt,
                                 ForOrdersFn evalOrders) {
  OrchestrationResult best;
  best.value = std::numeric_limits<double>::infinity();

  const std::size_t combos = countPortOrders(graph, opt.exactCap);
  if (combos < opt.exactCap) {
    // Materialize the enumeration in chunks and fan the constraint-system
    // solves (the dominant cost) out over the pool.
    std::vector<PortOrders> block;
    block.reserve(std::min<std::size_t>(combos, 1024));
    auto flush = [&] {
      auto results = parallelMap<std::optional<OrchestrationResult>>(
          opt.pool, block.size(), [&](std::size_t i) {
            return evalOrders(app, graph, block[i], opt.upperBound,
                              opt.boundAborts);
          });
      for (auto& r : results) {
        if (r) best = betterOf(std::move(best), std::move(*r));
      }
      block.clear();
    };
    forEachPortOrders(graph, opt.exactCap, [&](const PortOrders& po) {
      block.push_back(po);
      if (block.size() >= 1024) flush();
      return true;
    });
    flush();
    return best;
  }

  // The heuristic path runs unbounded on purpose: local search can descend
  // *through* values above the incumbent to a winner below it, so pruning
  // its starts or steps could degrade the returned plan. The incumbent
  // bound only prunes the exhaustive path above, where every order is
  // evaluated independently and a pruned (dominated) order can never be
  // the returned winner.
  for (const PortOrders& start :
       {PortOrders::heuristic(app, graph), PortOrders::canonical(graph)}) {
    if (auto r = evalOrders(app, graph, start, kUnbounded, nullptr)) {
      best = betterOf(std::move(best), std::move(*r));
    }
  }
  if (!std::isfinite(best.value)) return best;

  // Independent seeded restarts from the common start, fanned over the pool.
  const OrchestrationResult start = best;
  const std::size_t restarts = std::max<std::size_t>(1, opt.localSearchRestarts);
  auto chains = parallelMap<OrchestrationResult>(
      opt.pool, restarts, [&](std::size_t r) {
        return localSearchChain(app, graph, evalOrders, start,
                                opt.localSearchIters, opt.seed + r);
      });
  for (auto& r : chains) best = betterOf(std::move(best), std::move(r));
  return best;
}

}  // namespace

std::optional<OrchestrationResult> inorderPeriodForOrders(
    const Application& app, const ExecutionGraph& graph,
    const PortOrders& orders, double upperBound,
    std::atomic<std::size_t>* boundAborts) {
  const System sys(app, graph, orders, /*cyclic=*/true);
  const double lo = sys.busyLowerBound(graph);
  const double hi = 2.0 * sys.totalDuration() + 1.0;
  if (upperBound < hi) {
    // Incumbent pruning: the minimal period is >= the busy lower bound, and
    // by monotone feasibility it is > upperBound whenever the system is
    // infeasible at upperBound. Either way this solve cannot strictly beat
    // the incumbent, so skip the binary search entirely. Survivors run the
    // untouched [lo, hi] search and return bit-identical values.
    if (lo > upperBound || !sys.pcg.feasible(upperBound)) {
      if (boundAborts != nullptr) {
        boundAborts->fetch_add(1, std::memory_order_relaxed);
      }
      return std::nullopt;
    }
  }
  const auto r = sys.pcg.minLambda(lo, hi);
  if (!r) return std::nullopt;
  OrchestrationResult out;
  out.value = r->lambda;
  out.ol = sys.extract(r->potentials, r->lambda);
  out.orders = orders;
  return out;
}

std::optional<OperationList> inorderScheduleAtLambda(const Application& app,
                                                     const ExecutionGraph& graph,
                                                     const PortOrders& orders,
                                                     double lambda) {
  const System sys(app, graph, orders, /*cyclic=*/true);
  const auto x = sys.pcg.solve(lambda);
  if (!x) return std::nullopt;
  return sys.extract(*x, lambda);
}

std::optional<OrchestrationResult> oneportLatencyForOrders(
    const Application& app, const ExecutionGraph& graph,
    const PortOrders& orders, double upperBound,
    std::atomic<std::size_t>* boundAborts) {
  const System sys(app, graph, orders, /*cyclic=*/false);
  // Incumbent pruning: every operation of a node is serialized on its one
  // port within the single data set's span, so the per-node busy time lower
  // bounds the latency for any orders. The finiteness guard keeps the
  // busy-time scan off the hot path of unbounded searches.
  if (std::isfinite(upperBound) && sys.busyLowerBound(graph) > upperBound) {
    if (boundAborts != nullptr) {
      boundAborts->fetch_add(1, std::memory_order_relaxed);
    }
    return std::nullopt;
  }
  const auto x = sys.pcg.solve(/*lambda=*/0.0);  // lambda unused when acyclic
  if (!x) return std::nullopt;
  OrchestrationResult out;
  out.ol = sys.extract(*x, /*lambda=*/1.0);
  out.value = out.ol.latency();
  // Serialize consecutive data sets: P = L (Section 2.2, "Latency").
  out.ol.setLambda(out.value);
  out.orders = orders;
  return out;
}

OrchestrationResult inorderOrchestratePeriod(const Application& app,
                                             const ExecutionGraph& graph,
                                             const OrchestrationOptions& opt) {
  return searchOrders(app, graph, opt, &inorderPeriodForOrders);
}

OrchestrationResult oneportOrchestrateLatency(
    const Application& app, const ExecutionGraph& graph,
    const OrchestrationOptions& opt) {
  OrchestrationResult best =
      searchOrders(app, graph, opt, &oneportLatencyForOrders);
  // The list-scheduling packing is often much stronger than order search on
  // communication-bound graphs (e.g. counter-example B.2).
  if (auto r =
          oneportLatencyForOrders(app, graph, PortOrders::listLatency(app, graph),
                                  opt.upperBound, opt.boundAborts)) {
    best = betterOf(std::move(best), std::move(*r));
  }
  return best;
}

}  // namespace fsw
