#include "src/sched/periodic_cg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fsw {

PeriodicConstraintGraph::Var PeriodicConstraintGraph::addVariable() {
  return nVars_++;
}

void PeriodicConstraintGraph::addConstraint(Var u, Var v, double w, int k) {
  if (u >= nVars_ || v >= nVars_) {
    throw std::out_of_range("PeriodicConstraintGraph: variable out of range");
  }
  if (k < 0) {
    throw std::invalid_argument(
        "PeriodicConstraintGraph: k must be >= 0 (monotone feasibility)");
  }
  constraints_.push_back({u, v, w, k});
}

std::optional<std::vector<double>> PeriodicConstraintGraph::solve(
    double lambda) const {
  // Longest-path relaxation (Bellman-Ford) from an implicit source giving
  // every variable a floor of 0. The minimal solution is the vector of
  // longest-path distances; a positive cycle means infeasibility.
  std::vector<double> x(nVars_, 0.0);
  const std::size_t maxRounds = nVars_ + 2;
  bool changed = true;
  for (std::size_t round = 0; round < maxRounds && changed; ++round) {
    changed = false;
    for (const auto& c : constraints_) {
      const double bound = x[c.u] + c.w - c.k * lambda;
      if (bound > x[c.v] + 1e-12) {
        x[c.v] = bound;
        changed = true;
      }
    }
  }
  if (changed) return std::nullopt;  // still relaxing: positive cycle
  return x;
}

std::optional<PeriodicConstraintGraph::MinLambdaResult>
PeriodicConstraintGraph::minLambda(double lo, double hi, double tol) const {
  if (!feasible(hi)) return std::nullopt;
  if (feasible(lo)) {
    MinLambdaResult r;
    r.lambda = lo;
    r.potentials = *solve(lo);
    return r;
  }
  // Invariant: lo infeasible, hi feasible.
  while (hi - lo > tol * std::max(1.0, hi)) {
    const double mid = 0.5 * (lo + hi);
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  MinLambdaResult r;
  r.lambda = hi;
  r.potentials = *solve(hi);
  return r;
}

}  // namespace fsw
