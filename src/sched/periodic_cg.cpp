#include "src/sched/periodic_cg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fsw {

PeriodicConstraintGraph::Var PeriodicConstraintGraph::addVariable() {
  return nVars_++;
}

void PeriodicConstraintGraph::addConstraint(Var u, Var v, double w, int k) {
  if (u >= nVars_ || v >= nVars_) {
    throw std::out_of_range("PeriodicConstraintGraph: variable out of range");
  }
  if (k < 0) {
    throw std::invalid_argument(
        "PeriodicConstraintGraph: k must be >= 0 (monotone feasibility)");
  }
  constraints_.push_back({u, v, w, k});
}

bool PeriodicConstraintGraph::solveInto(double lambda,
                                        std::vector<double>& x) const {
  // Longest-path relaxation (Bellman-Ford) from an implicit source giving
  // every variable a floor of 0. The minimal solution is the vector of
  // longest-path distances; a positive cycle means infeasibility.
  x.assign(nVars_, 0.0);
  const std::size_t maxRounds = nVars_ + 2;
  bool changed = true;
  for (std::size_t round = 0; round < maxRounds && changed; ++round) {
    changed = false;
    for (const auto& c : constraints_) {
      const double bound = x[c.u] + c.w - c.k * lambda;
      if (bound > x[c.v] + 1e-12) {
        x[c.v] = bound;
        changed = true;
      }
    }
  }
  return !changed;  // still relaxing after maxRounds: positive cycle
}

std::optional<std::vector<double>> PeriodicConstraintGraph::solve(
    double lambda) const {
  std::vector<double> x;
  if (!solveInto(lambda, x)) return std::nullopt;
  return x;
}

std::optional<double> PeriodicConstraintGraph::minLambdaInto(
    double lo, double hi, std::vector<double>& x, double tol) const {
  if (!solveInto(hi, x)) return std::nullopt;
  if (solveInto(lo, x)) return lo;
  // Invariant: lo infeasible, hi feasible.
  while (hi - lo > tol * std::max(1.0, hi)) {
    const double mid = 0.5 * (lo + hi);
    if (solveInto(mid, x)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  const bool ok = solveInto(hi, x);
  (void)ok;  // hi was feasible above and feasibility is monotone in lambda
  return hi;
}

std::optional<PeriodicConstraintGraph::MinLambdaResult>
PeriodicConstraintGraph::minLambda(double lo, double hi, double tol) const {
  MinLambdaResult r;
  const auto lambda = minLambdaInto(lo, hi, r.potentials, tol);
  if (!lambda) return std::nullopt;
  r.lambda = *lambda;
  return r;
}

}  // namespace fsw
