#include "src/sched/latency.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/core/cost_model.hpp"
#include "src/oplist/validate.hpp"
#include "src/sched/overlap.hpp"

namespace fsw {
namespace {

/// R(v): time from the start of the communication feeding v until v's whole
/// subtree (including virtual outputs) completes, children fed by
/// non-increasing R (the exchange-optimal order of Algorithm 1).
struct TreeLatency {
  const ExecutionGraph& graph;
  const CostModel& costs;
  std::vector<double> r;
  std::vector<std::vector<NodeId>> childOrder;

  TreeLatency(const ExecutionGraph& g, const CostModel& c)
      : graph(g), costs(c), r(g.size(), 0.0), childOrder(g.size()) {
    const auto topo = graph.topologicalOrder();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) compute(*it);
  }

  void compute(NodeId v) {
    const double volIn = graph.isEntry(v)
                             ? 1.0
                             : costs.at(graph.predecessors(v).front()).sigmaOut;
    const double sigmaOut = costs.at(v).sigmaOut;
    double tail = 0.0;
    if (graph.isExit(v)) {
      tail = sigmaOut;
    } else {
      auto kids = graph.successors(v);
      std::sort(kids.begin(), kids.end(),
                [&](NodeId a, NodeId b) { return r[a] > r[b]; });
      childOrder[v] = kids;
      for (std::size_t j = 0; j < kids.size(); ++j) {
        tail = std::max(tail, static_cast<double>(j) * sigmaOut + r[kids[j]]);
      }
    }
    r[v] = volIn + costs.at(v).ccomp + tail;
  }
};

}  // namespace

double treeLatencyValue(const Application& app, const ExecutionGraph& graph) {
  if (!graph.isForest()) {
    throw std::invalid_argument("treeLatencyValue: graph is not a forest");
  }
  const CostModel costs(app, graph);
  const TreeLatency tl(graph, costs);
  double latency = 0.0;
  for (const NodeId root : graph.entries()) {
    latency = std::max(latency, tl.r[root]);
  }
  return latency;
}

OrchestrationResult treeLatencySchedule(const Application& app,
                                        const ExecutionGraph& graph) {
  if (!graph.isForest()) {
    throw std::invalid_argument("treeLatencySchedule: graph is not a forest");
  }
  const CostModel costs(app, graph);
  const TreeLatency tl(graph, costs);

  OperationList ol(graph.size(), 1.0);
  PortOrders orders = PortOrders::canonical(graph);

  // Iterative DFS laying out each subtree; (node, begin of its in-comm).
  std::vector<std::pair<NodeId, double>> stack;
  for (const NodeId root : graph.entries()) stack.emplace_back(root, 0.0);
  while (!stack.empty()) {
    const auto [v, t0] = stack.back();
    stack.pop_back();
    const double volIn =
        graph.isEntry(v) ? 1.0 : costs.at(graph.predecessors(v).front()).sigmaOut;
    const NodeId src = graph.isEntry(v) ? kWorld : graph.predecessors(v).front();
    ol.setComm(src, v, t0, t0 + volIn);
    const double calcEnd = t0 + volIn + costs.at(v).ccomp;
    ol.setCalc(v, t0 + volIn, calcEnd);
    const double sigmaOut = costs.at(v).sigmaOut;
    if (graph.isExit(v)) {
      ol.setComm(v, kWorld, calcEnd, calcEnd + sigmaOut);
    } else {
      orders.setOut(v, tl.childOrder[v]);
      for (std::size_t j = 0; j < tl.childOrder[v].size(); ++j) {
        stack.emplace_back(tl.childOrder[v][j],
                           calcEnd + static_cast<double>(j) * sigmaOut);
      }
    }
  }
  OrchestrationResult out;
  out.value = ol.latency();
  ol.setLambda(out.value);
  out.ol = std::move(ol);
  out.orders = std::move(orders);
  return out;
}

OrchestrationResult latencyOrchestrate(const Application& app,
                                       const ExecutionGraph& graph,
                                       CommModel m,
                                       const OrchestrationOptions& opt) {
  if (graph.isForest()) {
    // Optimal for every model (Prop 12: one-port feeding is dominant on
    // trees, and the schedule is OVERLAP/OUTORDER/INORDER-valid as-is).
    return treeLatencySchedule(app, graph);
  }
  OrchestrationResult best = oneportOrchestrateLatency(app, graph, opt);
  if (m == CommModel::Overlap) {
    OperationList fluid = overlapLatencyFluid(app, graph);
    if (fluid.latency() < best.value &&
        validate(app, graph, fluid, CommModel::Overlap).valid) {
      best.value = fluid.latency();
      best.ol = std::move(fluid);
    }
  }
  return best;
}

}  // namespace fsw
