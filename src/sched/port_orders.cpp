#include "src/sched/port_orders.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "src/core/cost_model.hpp"

namespace fsw {

PortOrders::PortOrders(const PortOrdersView& v) {
  n_ = v.size();
  inOff_.resize(n_ + 1, 0);
  outOff_.resize(n_ + 1, 0);
  if (n_ == 0) return;
  std::uint32_t off = 0;
  for (NodeId i = 0; i < n_; ++i) {
    inOff_[i] = off;
    off += static_cast<std::uint32_t>(v.in(i).size());
  }
  inOff_[n_] = off;
  for (NodeId i = 0; i < n_; ++i) {
    outOff_[i] = off;
    off += static_cast<std::uint32_t>(v.out(i).size());
  }
  outOff_[n_] = off;
  data_.resize(off);
  for (NodeId i = 0; i < n_; ++i) {
    std::copy(v.in(i).begin(), v.in(i).end(), data_.begin() + inOff_[i]);
    std::copy(v.out(i).begin(), v.out(i).end(), data_.begin() + outOff_[i]);
  }
}

void PortOrders::setIn(NodeId i, std::span<const NodeId> seq) {
  auto dst = in(i);
  assert(seq.size() == dst.size() && "setIn: port count is fixed");
  std::copy(seq.begin(), seq.end(), dst.begin());
}

void PortOrders::setOut(NodeId i, std::span<const NodeId> seq) {
  auto dst = out(i);
  assert(seq.size() == dst.size() && "setOut: port count is fixed");
  std::copy(seq.begin(), seq.end(), dst.begin());
}

PortOrders PortOrders::shapedFor(const ExecutionGraph& graph) {
  const std::size_t n = graph.size();
  PortOrders po;
  po.n_ = n;
  po.inOff_.resize(n + 1, 0);
  po.outOff_.resize(n + 1, 0);
  std::uint32_t off = 0;
  for (NodeId i = 0; i < n; ++i) {
    po.inOff_[i] = off;
    off += static_cast<std::uint32_t>(graph.predecessors(i).size() +
                                      (graph.isEntry(i) ? 1 : 0));
  }
  po.inOff_[n] = off;
  for (NodeId i = 0; i < n; ++i) {
    po.outOff_[i] = off;
    off += static_cast<std::uint32_t>(graph.successors(i).size() +
                                      (graph.isExit(i) ? 1 : 0));
  }
  po.outOff_[n] = off;
  po.data_.assign(off, 0);
  return po;
}

PortOrders PortOrders::canonical(const ExecutionGraph& graph) {
  PortOrders po = shapedFor(graph);
  for (NodeId i = 0; i < graph.size(); ++i) {
    auto ins = po.in(i);
    std::size_t t = 0;
    if (graph.isEntry(i)) ins[t++] = kWorld;  // virtual input first
    for (const NodeId p : graph.predecessors(i)) ins[t++] = p;
    std::sort(ins.begin() + (graph.isEntry(i) ? 1 : 0), ins.end());
    auto outs = po.out(i);
    t = 0;
    for (const NodeId s : graph.successors(i)) outs[t++] = s;
    std::sort(outs.begin(), outs.begin() + static_cast<std::ptrdiff_t>(t));
    if (graph.isExit(i)) outs[t] = kWorld;  // virtual output last
  }
  return po;
}

PortOrders PortOrders::heuristic(const Application& app,
                                 const ExecutionGraph& graph) {
  const CostModel costs(app, graph);
  const std::size_t n = graph.size();

  // Downstream remaining time: longest computation+communication path from a
  // node's computation to the end of the workflow.
  std::vector<double> remaining(n, 0.0);
  const auto topo = graph.topologicalOrder();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId i = *it;
    double tail = costs.at(i).sigmaOut;  // virtual output if exit
    for (const NodeId s : graph.successors(i)) {
      tail = std::max(tail, costs.at(i).sigmaOut + remaining[s]);
    }
    remaining[i] = costs.at(i).ccomp + tail;
  }
  // Earliest resource-free finish time, for receive ordering.
  std::vector<double> depth(n, 0.0);
  for (const NodeId i : topo) {
    double ready = 1.0;
    for (const NodeId p : graph.predecessors(i)) {
      ready = std::max(ready, depth[p] + costs.at(p).sigmaOut);
    }
    depth[i] = ready + costs.at(i).ccomp;
  }

  PortOrders po = canonical(graph);
  for (NodeId i = 0; i < n; ++i) {
    auto outs = po.out(i);
    std::stable_sort(outs.begin(), outs.end(), [&](NodeId a, NodeId b) {
      const double ra = (a == kWorld) ? 0.0 : remaining[a];
      const double rb = (b == kWorld) ? 0.0 : remaining[b];
      return ra > rb;  // longest branch first
    });
    auto ins = po.in(i);
    std::stable_sort(ins.begin(), ins.end(), [&](NodeId a, NodeId b) {
      const double da = (a == kWorld) ? 0.0 : depth[a];
      const double db = (b == kWorld) ? 0.0 : depth[b];
      return da < db;  // earliest-available sender first
    });
  }
  return po;
}

namespace {

/// Single-data-set greedy packing: one unary resource per server (the
/// receive / compute / send phases of one data set cannot interleave).
struct Comm {
  NodeId from, to;
  double vol;
  bool scheduled = false;
};

/// The full communication set of a graph — virtual inputs, edges, virtual
/// outputs — in the canonical id order every consumer shares. Costs are
/// read through a pre-indexed sigmaOut table and every buffer is reserved
/// up front (this runs inside candidate construction on serving paths).
std::vector<Comm> buildComms(const ExecutionGraph& g, const CostModel& costs) {
  const std::size_t n = g.size();
  std::vector<double> sigmaOut(n);
  std::size_t entries = 0;
  std::size_t exits = 0;
  for (NodeId i = 0; i < n; ++i) {
    sigmaOut[i] = costs.at(i).sigmaOut;
    if (g.isEntry(i)) ++entries;
    if (g.isExit(i)) ++exits;
  }
  std::vector<Comm> comms;
  comms.reserve(entries + g.edges().size() + exits);
  for (NodeId i = 0; i < n; ++i) {
    if (g.isEntry(i)) comms.push_back({kWorld, i, 1.0, false});
  }
  for (const auto& e : g.edges()) {
    comms.push_back({e.from, e.to, sigmaOut[e.from], false});
  }
  for (NodeId i = 0; i < n; ++i) {
    if (g.isExit(i)) comms.push_back({i, kWorld, sigmaOut[i], false});
  }
  return comms;
}

}  // namespace

PortOrders PortOrders::listLatency(const Application& app,
                                   const ExecutionGraph& graph) {
  const CostModel costs(app, graph);
  const std::size_t n = graph.size();

  // Downstream remaining time for tie-breaking (as in `heuristic`).
  std::vector<double> remaining(n, 0.0);
  const auto topo = graph.topologicalOrder();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId i = *it;
    double tail = costs.at(i).sigmaOut;
    for (const NodeId s : graph.successors(i)) {
      tail = std::max(tail, costs.at(i).sigmaOut + remaining[s]);
    }
    remaining[i] = costs.at(i).ccomp + tail;
  }

  std::vector<Comm> comms = buildComms(graph, costs);
  std::vector<std::size_t> insLeft(n, 0);
  for (NodeId i = 0; i < n; ++i) {
    insLeft[i] = graph.predecessors(i).size() + (graph.isEntry(i) ? 1 : 0);
  }

  std::vector<double> busy(n, 0.0);
  std::vector<double> calcEnd(n, -1.0);  // -1: inputs not yet all received
  PortOrders po = shapedFor(graph);
  std::vector<std::uint32_t> inFill(n, 0);
  std::vector<std::uint32_t> outFill(n, 0);

  for (std::size_t done = 0; done < comms.size(); ++done) {
    double bestT = std::numeric_limits<double>::infinity();
    double bestTie = -1.0;
    std::size_t pick = comms.size();
    for (std::size_t c = 0; c < comms.size(); ++c) {
      const auto& cm = comms[c];
      if (cm.scheduled) continue;
      if (cm.from != kWorld && calcEnd[cm.from] < 0.0) continue;  // not ready
      double t = cm.from == kWorld ? 0.0 : std::max(calcEnd[cm.from], busy[cm.from]);
      if (cm.to != kWorld) t = std::max(t, busy[cm.to]);
      const double tie = cm.to == kWorld ? 0.0 : remaining[cm.to];
      if (t < bestT - 1e-12 || (t < bestT + 1e-12 && tie > bestTie)) {
        bestT = t;
        bestTie = tie;
        pick = c;
      }
    }
    auto& cm = comms[pick];
    cm.scheduled = true;
    const double end = bestT + cm.vol;
    if (cm.from != kWorld) {
      busy[cm.from] = end;
      po.out(cm.from)[outFill[cm.from]++] = cm.to;
    }
    if (cm.to != kWorld) {
      busy[cm.to] = end;
      po.in(cm.to)[inFill[cm.to]++] = cm.from;
      if (--insLeft[cm.to] == 0) {
        calcEnd[cm.to] = end + costs.at(cm.to).ccomp;
        busy[cm.to] = calcEnd[cm.to];
      }
    }
  }
  return po;
}

namespace {

/// Recursive product-of-permutations walk over the sequences of one shared
/// flat buffer. No candidate is ever materialized: each leaf is the buffer's
/// current state.
struct Enumerator {
  std::vector<std::span<NodeId>> seqs;  // all per-node sequences, in place
  const std::function<bool(const PortOrders&)>* fn = nullptr;
  const PortOrders* po = nullptr;
  std::size_t budget = 0;
  bool stopped = false;     // fn asked to stop
  bool truncated = false;   // budget exhausted

  void run(std::size_t idx) {
    if (stopped || truncated) return;
    if (idx == seqs.size()) {
      if (budget == 0) {
        truncated = true;
        return;
      }
      --budget;
      if (!(*fn)(*po)) stopped = true;
      return;
    }
    auto seq = seqs[idx];
    std::sort(seq.begin(), seq.end());
    do {
      run(idx + 1);
      if (stopped || truncated) return;
    } while (std::next_permutation(seq.begin(), seq.end()));
  }
};

}  // namespace

bool forEachPortOrders(const ExecutionGraph& graph, std::size_t maxCombos,
                       const std::function<bool(const PortOrders&)>& fn) {
  PortOrders po = PortOrders::canonical(graph);
  Enumerator e;
  for (NodeId i = 0; i < graph.size(); ++i) e.seqs.push_back(po.in(i));
  for (NodeId i = 0; i < graph.size(); ++i) e.seqs.push_back(po.out(i));
  e.fn = &fn;
  e.po = &po;
  e.budget = maxCombos;
  e.run(0);
  return !e.truncated;
}

std::size_t countPortOrders(const ExecutionGraph& graph,
                            std::size_t maxCombos) {
  // Product of per-sequence factorials, saturated at maxCombos — exactly
  // the number of leaves the enumerator would visit under the same cap,
  // without walking them.
  std::size_t count = 1;
  for (NodeId i = 0; i < graph.size() && count < maxCombos; ++i) {
    const std::size_t lens[2] = {
        graph.predecessors(i).size() + (graph.isEntry(i) ? 1 : 0),
        graph.successors(i).size() + (graph.isExit(i) ? 1 : 0)};
    for (const std::size_t len : lens) {
      for (std::size_t k = 2; k <= len; ++k) {
        count *= k;
        if (count >= maxCombos) return maxCombos;
      }
    }
  }
  return std::min(count, maxCombos);
}

PortOrders ordersFromOperationList(const ExecutionGraph& graph,
                                   const OperationList& ol) {
  PortOrders po = PortOrders::shapedFor(graph);
  std::vector<NodeId> seq;
  const auto byBegin = [](const CommRecord& a, const CommRecord& b) {
    return a.begin < b.begin;
  };
  for (NodeId i = 0; i < graph.size(); ++i) {
    auto ins = ol.incoming(i);
    std::stable_sort(ins.begin(), ins.end(), byBegin);
    seq.clear();
    for (const CommRecord& rec : ins) seq.push_back(rec.from);
    // Defensive: an OL from a different comm structure yields valid (if
    // uninformed) orders instead of overrunning the fixed port slots.
    if (seq.size() != po.in(i).size()) return PortOrders::canonical(graph);
    po.setIn(i, seq);

    auto outs = ol.outgoing(i);
    std::stable_sort(outs.begin(), outs.end(), byBegin);
    seq.clear();
    for (const CommRecord& rec : outs) seq.push_back(rec.to);
    if (seq.size() != po.out(i).size()) return PortOrders::canonical(graph);
    po.setOut(i, seq);
  }
  return po;
}

}  // namespace fsw
