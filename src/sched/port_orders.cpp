#include "src/sched/port_orders.hpp"

#include <algorithm>
#include <limits>

#include "src/core/cost_model.hpp"

namespace fsw {
namespace {

std::vector<std::vector<NodeId>> baseIns(const ExecutionGraph& g) {
  std::vector<std::vector<NodeId>> in(g.size());
  for (NodeId i = 0; i < g.size(); ++i) {
    if (g.isEntry(i)) in[i].push_back(kWorld);
    for (const NodeId p : g.predecessors(i)) in[i].push_back(p);
    std::sort(in[i].begin(), in[i].end(), [](NodeId a, NodeId b) {
      if (a == kWorld) return true;   // virtual input first
      if (b == kWorld) return false;
      return a < b;
    });
  }
  return in;
}

std::vector<std::vector<NodeId>> baseOuts(const ExecutionGraph& g) {
  std::vector<std::vector<NodeId>> out(g.size());
  for (NodeId i = 0; i < g.size(); ++i) {
    for (const NodeId s : g.successors(i)) out[i].push_back(s);
    std::sort(out[i].begin(), out[i].end());
    if (g.isExit(i)) out[i].push_back(kWorld);  // virtual output last
  }
  return out;
}

}  // namespace

PortOrders PortOrders::canonical(const ExecutionGraph& graph) {
  return {baseIns(graph), baseOuts(graph)};
}

PortOrders PortOrders::heuristic(const Application& app,
                                 const ExecutionGraph& graph) {
  const CostModel costs(app, graph);
  const std::size_t n = graph.size();

  // Downstream remaining time: longest computation+communication path from a
  // node's computation to the end of the workflow.
  std::vector<double> remaining(n, 0.0);
  const auto topo = graph.topologicalOrder();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId i = *it;
    double tail = costs.at(i).sigmaOut;  // virtual output if exit
    for (const NodeId s : graph.successors(i)) {
      tail = std::max(tail, costs.at(i).sigmaOut + remaining[s]);
    }
    remaining[i] = costs.at(i).ccomp + tail;
  }
  // Earliest resource-free finish time, for receive ordering.
  std::vector<double> depth(n, 0.0);
  for (const NodeId i : topo) {
    double ready = 1.0;
    for (const NodeId p : graph.predecessors(i)) {
      ready = std::max(ready, depth[p] + costs.at(p).sigmaOut);
    }
    depth[i] = ready + costs.at(i).ccomp;
  }

  PortOrders po = canonical(graph);
  for (NodeId i = 0; i < n; ++i) {
    std::stable_sort(po.out[i].begin(), po.out[i].end(),
                     [&](NodeId a, NodeId b) {
                       const double ra = (a == kWorld) ? 0.0 : remaining[a];
                       const double rb = (b == kWorld) ? 0.0 : remaining[b];
                       return ra > rb;  // longest branch first
                     });
    std::stable_sort(po.in[i].begin(), po.in[i].end(),
                     [&](NodeId a, NodeId b) {
                       const double da = (a == kWorld) ? 0.0 : depth[a];
                       const double db = (b == kWorld) ? 0.0 : depth[b];
                       return da < db;  // earliest-available sender first
                     });
  }
  return po;
}

PortOrders PortOrders::listLatency(const Application& app,
                                   const ExecutionGraph& graph) {
  const CostModel costs(app, graph);
  const std::size_t n = graph.size();

  // Downstream remaining time for tie-breaking (as in `heuristic`).
  std::vector<double> remaining(n, 0.0);
  const auto topo = graph.topologicalOrder();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId i = *it;
    double tail = costs.at(i).sigmaOut;
    for (const NodeId s : graph.successors(i)) {
      tail = std::max(tail, costs.at(i).sigmaOut + remaining[s]);
    }
    remaining[i] = costs.at(i).ccomp + tail;
  }

  // Single-data-set greedy packing: one unary resource per server (the
  // receive / compute / send phases of one data set cannot interleave).
  struct Comm {
    NodeId from, to;
    double vol;
    bool scheduled = false;
  };
  std::vector<Comm> comms;
  std::vector<std::size_t> insLeft(n, 0);
  for (NodeId i = 0; i < n; ++i) {
    if (graph.isEntry(i)) comms.push_back({kWorld, i, 1.0, false});
  }
  for (const auto& e : graph.edges()) {
    comms.push_back({e.from, e.to, costs.at(e.from).sigmaOut, false});
  }
  for (NodeId i = 0; i < n; ++i) {
    if (graph.isExit(i)) {
      comms.push_back({i, kWorld, costs.at(i).sigmaOut, false});
    }
    insLeft[i] = graph.predecessors(i).size() + (graph.isEntry(i) ? 1 : 0);
  }

  std::vector<double> busy(n, 0.0);
  std::vector<double> calcEnd(n, -1.0);  // -1: inputs not yet all received
  PortOrders po;
  po.in.resize(n);
  po.out.resize(n);

  for (std::size_t done = 0; done < comms.size(); ++done) {
    double bestT = std::numeric_limits<double>::infinity();
    double bestTie = -1.0;
    std::size_t pick = comms.size();
    for (std::size_t c = 0; c < comms.size(); ++c) {
      const auto& cm = comms[c];
      if (cm.scheduled) continue;
      if (cm.from != kWorld && calcEnd[cm.from] < 0.0) continue;  // not ready
      double t = cm.from == kWorld ? 0.0 : std::max(calcEnd[cm.from], busy[cm.from]);
      if (cm.to != kWorld) t = std::max(t, busy[cm.to]);
      const double tie = cm.to == kWorld ? 0.0 : remaining[cm.to];
      if (t < bestT - 1e-12 || (t < bestT + 1e-12 && tie > bestTie)) {
        bestT = t;
        bestTie = tie;
        pick = c;
      }
    }
    auto& cm = comms[pick];
    cm.scheduled = true;
    const double end = bestT + cm.vol;
    if (cm.from != kWorld) {
      busy[cm.from] = end;
      po.out[cm.from].push_back(cm.to);
    }
    if (cm.to != kWorld) {
      busy[cm.to] = end;
      po.in[cm.to].push_back(cm.from);
      if (--insLeft[cm.to] == 0) {
        calcEnd[cm.to] = end + costs.at(cm.to).ccomp;
        busy[cm.to] = calcEnd[cm.to];
      }
    }
  }
  return po;
}

namespace {

struct Enumerator {
  std::vector<std::vector<NodeId>*> seqs;  // all per-node sequences
  const std::function<bool(const PortOrders&)>* fn = nullptr;
  const PortOrders* po = nullptr;
  std::size_t budget = 0;
  bool stopped = false;     // fn asked to stop
  bool truncated = false;   // budget exhausted

  void run(std::size_t idx) {
    if (stopped || truncated) return;
    if (idx == seqs.size()) {
      if (budget == 0) {
        truncated = true;
        return;
      }
      --budget;
      if (!(*fn)(*po)) stopped = true;
      return;
    }
    auto& seq = *seqs[idx];
    std::sort(seq.begin(), seq.end());
    do {
      run(idx + 1);
      if (stopped || truncated) return;
    } while (std::next_permutation(seq.begin(), seq.end()));
  }
};

}  // namespace

bool forEachPortOrders(const ExecutionGraph& graph, std::size_t maxCombos,
                       const std::function<bool(const PortOrders&)>& fn) {
  PortOrders po = PortOrders::canonical(graph);
  Enumerator e;
  for (NodeId i = 0; i < graph.size(); ++i) e.seqs.push_back(&po.in[i]);
  for (NodeId i = 0; i < graph.size(); ++i) e.seqs.push_back(&po.out[i]);
  e.fn = &fn;
  e.po = &po;
  e.budget = maxCombos;
  e.run(0);
  return !e.truncated;
}

std::size_t countPortOrders(const ExecutionGraph& graph,
                            std::size_t maxCombos) {
  std::size_t count = 0;
  forEachPortOrders(graph, maxCombos, [&](const PortOrders&) {
    ++count;
    return true;
  });
  return count;
}

}  // namespace fsw
