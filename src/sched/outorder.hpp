// OUTORDER orchestration: NP-hard even for a fixed execution graph (Theorem
// 1 / Prop 2), so this module is a search procedure with certificates:
//
//   * lower bound: max_k (Cin + Ccomp + Cout) (Section 2.2);
//   * upper bound seed: the INORDER optimum — the INORDER rule set is a
//     strict superset of OUTORDER's, so its OL is OUTORDER-valid as-is;
//   * improvement: for a candidate lambda, a conflict-repair search delays
//     operations past each other modulo lambda (out-of-order interleaving of
//     consecutive data sets) until the per-server no-overlap rules hold;
//     candidates are probed by bisection between the bounds.
//
// Every returned OL is certified by the Appendix A validator, so the result
// is always a *valid* OUTORDER schedule; optimality is certified only when
// the lower bound is reached (as on the Section 2.3 example, where the seed
// at 23/3 is repaired down to the bound of 7).
#pragma once

#include <cstdint>
#include <limits>

#include "src/core/application.hpp"
#include "src/core/execution_graph.hpp"
#include "src/sched/inorder.hpp"

namespace fsw {

struct OutorderOptions {
  std::size_t repairIters = 400;   ///< repair steps per attempt
  std::size_t restarts = 24;       ///< randomized restarts per lambda
  std::size_t bisectSteps = 12;    ///< lambda probes between the bounds
  /// Restart r repairs with a PRNG derived from `seed` + r, so restarts are
  /// independent chains: they fan out over `pool` and the first success by
  /// restart index is returned — the same winner a serial scan finds.
  std::uint64_t seed = 1;
  ThreadPool* pool = nullptr;      ///< nullptr = serial restarts
  OrchestrationOptions inorder{};  ///< options for the INORDER seed
  /// Incumbent bound on the *final* (post-repair) OUTORDER value. The plain
  /// incumbent is unsound against the INORDER seed search — the repair
  /// improves below its seed — so the search derives its own seed-phase
  /// bound from this value plus the worst-case repair improvement (the gap
  /// between a certified seed upper bound and the analytic lower bound) and
  /// checks the final-value incumbent only inside the repair bisection.
  /// Candidates whose best reachable value exceeds the bound return an
  /// infinite-value result; otherwise the winner is bit-identical to the
  /// unbounded search. orchestrate() overwrites this field from
  /// OrchestrationOptions::upperBound, so it is not a request-key knob;
  /// it only matters for direct callers of the functions below.
  double upperBound = std::numeric_limits<double>::infinity();
  /// Orders pruned during the seed phase (the bounded INORDER enumeration
  /// plus whole candidates dominated before the seed even runs).
  std::atomic<std::size_t>* seedBoundAborts = nullptr;
  /// Bisections cut short because the certified floor crossed the incumbent.
  std::atomic<std::size_t>* repairBoundAborts = nullptr;
  /// Memory-discipline observability, mirroring OrchestrationOptions: repair
  /// iterations count as probes; scratch growth events and the conflict-list
  /// arena high water feed the same EngineStats counters.
  std::atomic<std::size_t>* evalProbes = nullptr;
  std::atomic<std::size_t>* scratchHeapAllocs = nullptr;
  std::atomic<std::size_t>* arenaBytesHighWater = nullptr;
};

/// Attempts to build a valid OUTORDER OL with period exactly `lambda` by
/// conflict repair. Returns an OL only if the validator accepts it.
[[nodiscard]] std::optional<OperationList> outorderRepairAtLambda(
    const Application& app, const ExecutionGraph& graph, double lambda,
    const OutorderOptions& opt = {});

/// Best OUTORDER period found (lower-bounded search seeded by INORDER).
[[nodiscard]] OrchestrationResult outorderOrchestratePeriod(
    const Application& app, const ExecutionGraph& graph,
    const OutorderOptions& opt = {});

/// One-port-overlap hybrid (communication/computation overlap, but each
/// server's in and out ports serialized): the model pair counter-example
/// B.3 separates from the multi-port OVERLAP model. Same repair machinery,
/// with calc/comm collisions allowed.
[[nodiscard]] std::optional<OperationList> onePortOverlapRepairAtLambda(
    const Application& app, const ExecutionGraph& graph, double lambda,
    const OutorderOptions& opt = {});

/// Best one-port-overlap period found.
[[nodiscard]] OrchestrationResult onePortOverlapOrchestratePeriod(
    const Application& app, const ExecutionGraph& graph,
    const OutorderOptions& opt = {});

}  // namespace fsw
