// Per-server orderings of incoming and outgoing communications.
//
// Once an execution graph is fixed, a one-port schedule is characterized by
// the order in which every server performs its receives and its sends (plus
// start times, which the difference-constraint solver then optimizes). The
// NP-hardness of one-port orchestration (Theorem 1) lives exactly in the
// choice of these orders.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "src/core/application.hpp"
#include "src/core/execution_graph.hpp"
#include "src/oplist/operation_list.hpp"

namespace fsw {

struct PortOrders {
  /// in[i] = sources of C_i's incoming communications (kWorld for the virtual
  /// input), in receive order. out[i] = targets in send order (kWorld for
  /// the virtual output).
  std::vector<std::vector<NodeId>> in;
  std::vector<std::vector<NodeId>> out;

  /// Ascending-index orders (virtual input first, virtual output last).
  static PortOrders canonical(const ExecutionGraph& graph);

  /// Weight-guided orders: sends sorted by non-increasing downstream
  /// remaining time (feed the longest branch first, the exchange argument
  /// behind Algorithm 1); receives sorted by non-decreasing sender depth.
  static PortOrders heuristic(const Application& app,
                              const ExecutionGraph& graph);

  /// List-scheduling orders for the latency (single data set) regime: an
  /// event-driven greedy packs communications one-port-feasibly as early as
  /// possible (ties broken by downstream remaining time) and the realized
  /// sequence at every port becomes the order. Much stronger than
  /// `heuristic` on communication-bound graphs like counter-example B.2.
  static PortOrders listLatency(const Application& app,
                                const ExecutionGraph& graph);
};

/// Invokes fn for every combination of per-node in/out permutations, up to
/// `maxCombos` combinations. Returns true iff the enumeration was exhaustive
/// (i.e. the total count did not exceed the cap). fn may return false to stop
/// early (the function then returns true: enumeration was not truncated by
/// the cap).
bool forEachPortOrders(const ExecutionGraph& graph, std::size_t maxCombos,
                       const std::function<bool(const PortOrders&)>& fn);

/// Number of in/out order combinations (capped at maxCombos + 1).
[[nodiscard]] std::size_t countPortOrders(const ExecutionGraph& graph,
                                          std::size_t maxCombos);

}  // namespace fsw
