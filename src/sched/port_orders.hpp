// Per-server orderings of incoming and outgoing communications.
//
// Once an execution graph is fixed, a one-port schedule is characterized by
// the order in which every server performs its receives and its sends (plus
// start times, which the difference-constraint solver then optimizes). The
// NP-hardness of one-port orchestration (Theorem 1) lives exactly in the
// choice of these orders.
//
// Since the memory-discipline PR the encoding is a flat SoA: one NodeId
// buffer holding every sequence back to back, plus per-node offset tables.
// A PortOrders for a given graph is three contiguous vectors regardless of
// node count, copying one is three memcpys, and the exhaustive enumeration
// permutes sequences in place inside a single reusable buffer instead of
// heap-constructing a nested vector-of-vectors per candidate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <span>
#include <vector>

#include "src/core/application.hpp"
#include "src/core/execution_graph.hpp"
#include "src/oplist/operation_list.hpp"

namespace fsw {

class PortOrders;

/// Non-owning read view of a PortOrders — the currency of the hot path.
/// Enumeration blocks store many candidates in one dense buffer sharing a
/// single offset table; a view binds offsets to one candidate's data slice
/// without materializing an owning object.
class PortOrdersView {
 public:
  PortOrdersView() = default;
  PortOrdersView(std::size_t n, const std::uint32_t* inOff,
                 const std::uint32_t* outOff, const NodeId* data) noexcept
      : n_(n), inOff_(inOff), outOff_(outOff), data_(data) {}
  // Implicit: any owning PortOrders is usable wherever a view is expected.
  PortOrdersView(const PortOrders& po) noexcept;  // NOLINT(runtime/explicit)

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// in(i) = sources of C_i's incoming communications (kWorld for the
  /// virtual input), in receive order.
  [[nodiscard]] std::span<const NodeId> in(NodeId i) const noexcept {
    return {data_ + inOff_[i], inOff_[i + 1] - inOff_[i]};
  }
  /// out(i) = targets in send order (kWorld for the virtual output).
  [[nodiscard]] std::span<const NodeId> out(NodeId i) const noexcept {
    return {data_ + outOff_[i], outOff_[i + 1] - outOff_[i]};
  }

 private:
  std::size_t n_ = 0;
  const std::uint32_t* inOff_ = nullptr;
  const std::uint32_t* outOff_ = nullptr;
  const NodeId* data_ = nullptr;
};

class PortOrders {
 public:
  PortOrders() = default;
  /// Materializes an owning copy of a view (used when an enumeration slot
  /// becomes the incumbent winner).
  explicit PortOrders(const PortOrdersView& v);

  /// Number of nodes covered (0 for a default-constructed object).
  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  [[nodiscard]] std::span<NodeId> in(NodeId i) noexcept {
    return {data_.data() + inOff_[i], inOff_[i + 1] - inOff_[i]};
  }
  [[nodiscard]] std::span<const NodeId> in(NodeId i) const noexcept {
    return {data_.data() + inOff_[i], inOff_[i + 1] - inOff_[i]};
  }
  [[nodiscard]] std::span<NodeId> out(NodeId i) noexcept {
    return {data_.data() + outOff_[i], outOff_[i + 1] - outOff_[i]};
  }
  [[nodiscard]] std::span<const NodeId> out(NodeId i) const noexcept {
    return {data_.data() + outOff_[i], outOff_[i + 1] - outOff_[i]};
  }

  /// Overwrites node i's receive (resp. send) order. The replacement must
  /// have the node's exact port count — the comm *set* is fixed by the
  /// graph, only its order is free.
  void setIn(NodeId i, std::span<const NodeId> seq);
  void setOut(NodeId i, std::span<const NodeId> seq);
  void setIn(NodeId i, std::initializer_list<NodeId> seq) {
    setIn(i, std::span<const NodeId>(seq.begin(), seq.size()));
  }
  void setOut(NodeId i, std::initializer_list<NodeId> seq) {
    setOut(i, std::span<const NodeId>(seq.begin(), seq.size()));
  }

  /// Owning copies for cold paths (tests, witnesses, diagnostics).
  [[nodiscard]] std::vector<NodeId> inVec(NodeId i) const {
    return {in(i).begin(), in(i).end()};
  }
  [[nodiscard]] std::vector<NodeId> outVec(NodeId i) const {
    return {out(i).begin(), out(i).end()};
  }

  friend bool operator==(const PortOrders&, const PortOrders&) = default;

  /// Flat accessors for the enumerator and dense block storage. The data
  /// layout is every in-sequence (node order) followed by every
  /// out-sequence; offsets are absolute indices into the data buffer.
  [[nodiscard]] const NodeId* flatData() const noexcept {
    return data_.data();
  }
  [[nodiscard]] NodeId* flatData() noexcept { return data_.data(); }
  [[nodiscard]] std::size_t flatSize() const noexcept { return data_.size(); }
  [[nodiscard]] const std::uint32_t* inOffsets() const noexcept {
    return inOff_.data();
  }
  [[nodiscard]] const std::uint32_t* outOffsets() const noexcept {
    return outOff_.data();
  }

  /// Offsets sized for `graph`'s comm structure, all slots zero — the fill
  /// target every named constructor below starts from.
  static PortOrders shapedFor(const ExecutionGraph& graph);

  /// Ascending-index orders (virtual input first, virtual output last).
  static PortOrders canonical(const ExecutionGraph& graph);

  /// Weight-guided orders: sends sorted by non-increasing downstream
  /// remaining time (feed the longest branch first, the exchange argument
  /// behind Algorithm 1); receives sorted by non-decreasing sender depth.
  static PortOrders heuristic(const Application& app,
                              const ExecutionGraph& graph);

  /// List-scheduling orders for the latency (single data set) regime: an
  /// event-driven greedy packs communications one-port-feasibly as early as
  /// possible (ties broken by downstream remaining time) and the realized
  /// sequence at every port becomes the order. Much stronger than
  /// `heuristic` on communication-bound graphs like counter-example B.2.
  static PortOrders listLatency(const Application& app,
                                const ExecutionGraph& graph);

 private:
  std::size_t n_ = 0;
  std::vector<std::uint32_t> inOff_;   ///< n_ + 1 absolute offsets
  std::vector<std::uint32_t> outOff_;  ///< n_ + 1 absolute offsets
  std::vector<NodeId> data_;           ///< all sequences, back to back
};

inline PortOrdersView::PortOrdersView(const PortOrders& po) noexcept
    : n_(po.size()),
      inOff_(po.inOffsets()),
      outOff_(po.outOffsets()),
      data_(po.flatData()) {}

/// Invokes fn for every combination of per-node in/out permutations, up to
/// `maxCombos` combinations. The PortOrders passed to fn is one reusable
/// buffer permuted in place — copy it (cheap: three flat vectors) to keep a
/// candidate beyond the callback. Returns true iff the enumeration was
/// exhaustive (i.e. the total count did not exceed the cap). fn may return
/// false to stop early (the function then returns true: enumeration was not
/// truncated by the cap).
bool forEachPortOrders(const ExecutionGraph& graph, std::size_t maxCombos,
                       const std::function<bool(const PortOrders&)>& fn);

/// Number of in/out order combinations (capped at maxCombos). Computed
/// arithmetically — product of per-port factorials with saturation — so the
/// pre-pass of an exact search costs O(n), not a full enumeration.
[[nodiscard]] std::size_t countPortOrders(const ExecutionGraph& graph,
                                          std::size_t maxCombos);

/// Recovers per-port orders from a realized schedule: at every node the
/// incoming (resp. outgoing) communications sorted by begin time become the
/// receive (resp. send) order. `ol` must have been built for `graph` (the
/// comm sets must match). The warm-start path uses this to turn a prior
/// winner's OL into orders that can be re-evaluated under new parameters;
/// note that for a wrapped OUTORDER OL the begin-time order is only *a*
/// permutation — its re-evaluation may be infeasible, which callers must
/// treat as "no information", never as a bound.
[[nodiscard]] PortOrders ordersFromOperationList(const ExecutionGraph& graph,
                                                 const OperationList& ol);

}  // namespace fsw
