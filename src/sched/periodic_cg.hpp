// Periodic difference-constraint systems.
//
// All orchestration problems with fixed port orders reduce to systems of
// constraints  x_v - x_u >= w - k*lambda  with k in {0, 1}: intra-cycle
// sequencing (k = 0) and the cyclic wrap-around of Appendix A constraint (1)
// (k = 1). For fixed lambda this is a classical difference-constraint system,
// feasible iff the constraint graph has no positive-weight cycle (longest
// path well-defined); since k >= 0, feasibility is monotone in lambda, so the
// minimal feasible lambda is found by binary search.
#pragma once

#include <limits>
#include <optional>
#include <vector>

namespace fsw {

class PeriodicConstraintGraph {
 public:
  using Var = std::size_t;

  /// Adds a variable; its value will be >= 0 in any produced solution.
  Var addVariable();
  [[nodiscard]] std::size_t variableCount() const noexcept { return nVars_; }

  /// Adds x_v - x_u >= w - k * lambda (k >= 0).
  void addConstraint(Var u, Var v, double w, int k = 0);

  /// Minimal solution (componentwise) for fixed lambda, or nullopt if the
  /// system is infeasible.
  [[nodiscard]] std::optional<std::vector<double>> solve(double lambda) const;

  [[nodiscard]] bool feasible(double lambda) const { return solve(lambda).has_value(); }

  struct MinLambdaResult {
    double lambda = std::numeric_limits<double>::infinity();
    std::vector<double> potentials;  ///< a solution at `lambda`
  };

  /// Smallest lambda in [lo, hi] (within `tol`) for which the system is
  /// feasible, or nullopt if even `hi` is infeasible (inconsistent orders).
  [[nodiscard]] std::optional<MinLambdaResult> minLambda(
      double lo, double hi, double tol = 1e-9) const;

 private:
  struct C {
    Var u;
    Var v;
    double w;
    int k;
  };
  std::size_t nVars_ = 0;
  std::vector<C> constraints_;
};

}  // namespace fsw
