// Periodic difference-constraint systems.
//
// All orchestration problems with fixed port orders reduce to systems of
// constraints  x_v - x_u >= w - k*lambda  with k in {0, 1}: intra-cycle
// sequencing (k = 0) and the cyclic wrap-around of Appendix A constraint (1)
// (k = 1). For fixed lambda this is a classical difference-constraint system,
// feasible iff the constraint graph has no positive-weight cycle (longest
// path well-defined); since k >= 0, feasibility is monotone in lambda, so the
// minimal feasible lambda is found by binary search.
#pragma once

#include <limits>
#include <optional>
#include <vector>

namespace fsw {

class PeriodicConstraintGraph {
 public:
  using Var = std::size_t;

  /// Adds a variable; its value will be >= 0 in any produced solution.
  Var addVariable();
  [[nodiscard]] std::size_t variableCount() const noexcept { return nVars_; }

  /// Adds `count` variables at once (bulk form for hot paths).
  Var addVariables(std::size_t count) {
    const Var first = nVars_;
    nVars_ += count;
    return first;
  }

  /// Adds x_v - x_u >= w - k * lambda (k >= 0).
  void addConstraint(Var u, Var v, double w, int k = 0);

  /// Forgets all variables and constraints but keeps the constraint storage,
  /// so a reused instance stops allocating once warmed up (hot-path reuse).
  void clear() noexcept {
    nVars_ = 0;
    constraints_.clear();
  }

  /// Reserves constraint storage (hot-path warm-up aid).
  void reserveConstraints(std::size_t n) { constraints_.reserve(n); }

  /// Capacity of the constraint storage — lets scratch owners detect
  /// buffer-growth events for the allocation counters.
  [[nodiscard]] std::size_t constraintCapacity() const noexcept {
    return constraints_.capacity();
  }

  /// Minimal solution (componentwise) for fixed lambda, or nullopt if the
  /// system is infeasible.
  [[nodiscard]] std::optional<std::vector<double>> solve(double lambda) const;

  /// Allocation-free solve: writes the minimal solution into `x` (resized,
  /// capacity reused). Returns false on infeasibility (x is then garbage).
  bool solveInto(double lambda, std::vector<double>& x) const;

  [[nodiscard]] bool feasible(double lambda) const {
    std::vector<double> x;
    return solveInto(lambda, x);
  }
  /// feasible() with caller-provided scratch, for allocation-free probing.
  bool feasibleInto(double lambda, std::vector<double>& scratch) const {
    return solveInto(lambda, scratch);
  }

  struct MinLambdaResult {
    double lambda = std::numeric_limits<double>::infinity();
    std::vector<double> potentials;  ///< a solution at `lambda`
  };

  /// Smallest lambda in [lo, hi] (within `tol`) for which the system is
  /// feasible, or nullopt if even `hi` is infeasible (inconsistent orders).
  [[nodiscard]] std::optional<MinLambdaResult> minLambda(
      double lo, double hi, double tol = 1e-9) const;

  /// Allocation-free minLambda: bisects using `x` as the solve buffer and
  /// leaves a solution at the returned lambda in it. Returns the minimal
  /// feasible lambda, or nullopt if even `hi` is infeasible. Identical
  /// bisection sequence to minLambda() — results are bit-identical.
  std::optional<double> minLambdaInto(double lo, double hi,
                                      std::vector<double>& x,
                                      double tol = 1e-9) const;

 private:
  struct C {
    Var u;
    Var v;
    double w;
    int k;
  };
  std::size_t nVars_ = 0;
  std::vector<C> constraints_;
};

}  // namespace fsw
