// Reusable evaluation state for the order-search inner loop.
//
// Evaluating one port-order candidate used to rebuild everything from the
// ground up: cost model, comm-id maps, constraint system, solve buffers.
// Almost all of that is *order-independent* — the communication set, its
// durations, the busy-time lower bound, the total duration, and the
// variable numbering are fixed by (application, graph) alone. This module
// splits the evaluation into:
//
//   * EvalContext — the immutable per-(app, graph) part, built once per
//     search and shared read-only by every worker;
//   * EvalScratch — the mutable per-probe part (constraint system, solve
//     vector, arena), owned by one worker and recycled across probes so the
//     steady-state hot loop performs no heap allocation;
//   * WorkerScratchPool<T> — hands each ThreadPool worker (and the search's
//     owning thread) a dedicated scratch slot without synchronization, with
//     a mutex-guarded overflow list for foreign threads that execute our
//     tasks during cross-pool nested helping.
//
// Determinism: the context preserves the legacy floating-point summation
// orders (comm records are kept in (from, to)-key-sorted order, exactly the
// old std::map iteration order), and renumbering variables does not change
// the Bellman-Ford trajectory, so values and extracted operation lists are
// bit-identical to the per-probe-rebuild implementation.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/arena.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/application.hpp"
#include "src/core/execution_graph.hpp"
#include "src/oplist/operation_list.hpp"
#include "src/sched/periodic_cg.hpp"
#include "src/sched/port_orders.hpp"

namespace fsw {

/// Relaxed-order max accumulation into a shared counter (used for the arena
/// high-water stat, where only the final maximum matters).
inline void atomicMaxRelaxed(std::atomic<std::size_t>& target,
                             std::size_t value) {
  std::size_t cur = target.load(std::memory_order_relaxed);
  while (cur < value && !target.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

/// Per-worker mutable evaluation state, recycled across probes.
struct EvalScratch {
  PeriodicConstraintGraph pcg;
  std::vector<double> x;  ///< solve buffer (potentials)
  MonotonicArena arena;
  std::size_t probes = 0;      ///< evaluations performed with this scratch
  std::size_t heapAllocs = 0;  ///< observed buffer-growth events
};

/// The order-independent half of an INORDER / one-port-latency evaluation.
class EvalContext {
 public:
  struct CommRec {
    NodeId from;
    NodeId to;
    double dur;
  };

  /// `cyclic` selects the period regime (wrap-around constraints); false is
  /// the single-data-set latency regime.
  EvalContext(const Application& app, const ExecutionGraph& graph,
              bool cyclic);

  [[nodiscard]] std::size_t nodeCount() const noexcept { return n_; }
  [[nodiscard]] bool cyclic() const noexcept { return cyclic_; }
  /// Variables: calc i -> i, comm c -> nodeCount() + c.
  [[nodiscard]] std::size_t varCount() const noexcept {
    return n_ + comms_.size();
  }
  /// Comm records in (from, to)-key-sorted order — the legacy summation and
  /// extraction order.
  [[nodiscard]] const std::vector<CommRec>& comms() const noexcept {
    return comms_;
  }
  [[nodiscard]] double calcDur(NodeId i) const { return calcDur_[i]; }
  /// max_i (ccomp_i + sum of incident comm durations): a lower bound on any
  /// feasible lambda (and on the one-port latency).
  [[nodiscard]] double busyLowerBound() const noexcept { return busyLB_; }
  [[nodiscard]] double totalDuration() const noexcept { return totalDur_; }

  [[nodiscard]] PeriodicConstraintGraph::Var calcVar(NodeId i) const noexcept {
    return i;
  }
  [[nodiscard]] PeriodicConstraintGraph::Var commVar(
      std::uint32_t c) const noexcept {
    return n_ + c;
  }
  /// Comm id of src -> node (src may be kWorld). Linear scan over the
  /// node's ports — port counts are tiny on the hot path.
  [[nodiscard]] std::uint32_t inCommId(NodeId node, NodeId src) const;
  /// Comm id of node -> dst (dst may be kWorld).
  [[nodiscard]] std::uint32_t outCommId(NodeId node, NodeId dst) const;

  /// Rebuilds s.pcg as the INORDER rule set for `orders` (constraint
  /// insertion order identical to the legacy per-probe construction).
  /// Allocation-free once s.pcg's storage is warmed up.
  void buildSystem(PortOrdersView orders, EvalScratch& s) const;

  /// OperationList from a solution x at lambda, records in the legacy
  /// (calc by index, then comms in key order) layout.
  [[nodiscard]] OperationList extract(const std::vector<double>& x,
                                      double lambda) const;

  /// Latency of a solution: max end time over all communications.
  [[nodiscard]] double latencyOf(const std::vector<double>& x) const;

 private:
  std::size_t n_ = 0;
  bool cyclic_ = true;
  std::vector<double> calcDur_;
  std::vector<CommRec> comms_;  ///< key-sorted
  // CSR lookup: for node i, (neighbor, comm id) pairs of its in/out ports.
  std::vector<std::uint32_t> inAdjOff_, outAdjOff_;
  std::vector<std::pair<NodeId, std::uint32_t>> inAdj_, outAdj_;
  std::size_t constraintBound_ = 0;  ///< reserve hint for buildSystem
  double busyLB_ = 0.0;
  double totalDur_ = 0.0;
};

/// Per-worker scratch slots for one search. Slot 0 belongs to the thread
/// that constructed the pool object (the search owner); slot 1 + k belongs
/// to worker k of `pool`. A thread that is neither — a worker of a
/// *different* ThreadPool draining our tasks while blocked in its own
/// parallelFor — leases from a mutex-guarded overflow list, so scratch is
/// never shared between two concurrently running evaluations.
template <typename T>
class WorkerScratchPool {
 public:
  explicit WorkerScratchPool(ThreadPool* pool)
      : pool_(pool),
        owner_(std::this_thread::get_id()),
        slots_(1 + (pool != nullptr ? pool->threadCount() : 0)) {}

  WorkerScratchPool(const WorkerScratchPool&) = delete;
  WorkerScratchPool& operator=(const WorkerScratchPool&) = delete;

  /// RAII lease of the calling thread's scratch. Keep it for the duration
  /// of one task (an evaluation, a local-search chain, a repair restart);
  /// re-acquiring per task is cheap (two thread_local reads on the fast
  /// path).
  class Lease {
   public:
    Lease(WorkerScratchPool& owner, T* slot, std::unique_ptr<T> overflow)
        : owner_(&owner), overflow_(std::move(overflow)),
          ptr_(slot != nullptr ? slot : overflow_.get()) {}
    ~Lease() {
      if (overflow_ != nullptr) owner_->returnOverflow(std::move(overflow_));
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    T& operator*() const noexcept { return *ptr_; }
    T* operator->() const noexcept { return ptr_; }

   private:
    WorkerScratchPool* owner_;
    std::unique_ptr<T> overflow_;
    T* ptr_;
  };

  [[nodiscard]] Lease lease() {
    if (pool_ != nullptr && ThreadPool::currentPool() == pool_) {
      return Lease(*this, &slots_[1 + ThreadPool::currentWorkerSlot()],
                   nullptr);
    }
    if (ThreadPool::currentPool() == nullptr &&
        std::this_thread::get_id() == owner_) {
      return Lease(*this, &slots_[0], nullptr);
    }
    std::unique_ptr<T> s;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!overflow_.empty()) {
        s = std::move(overflow_.back());
        overflow_.pop_back();
      }
    }
    if (s == nullptr) s = std::make_unique<T>();
    return Lease(*this, nullptr, std::move(s));
  }

  /// Visits every scratch ever handed out. Only valid when no lease is
  /// outstanding (i.e. after the search's parallel sections completed).
  template <typename Fn>
  void forEach(Fn&& fn) {
    for (auto& s : slots_) fn(s);
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto& s : overflow_) fn(*s);
  }

 private:
  void returnOverflow(std::unique_ptr<T> s) {
    const std::lock_guard<std::mutex> lock(mu_);
    overflow_.push_back(std::move(s));
  }

  ThreadPool* pool_;
  std::thread::id owner_;
  std::vector<T> slots_;
  std::mutex mu_;
  std::vector<std::unique_ptr<T>> overflow_;
};

}  // namespace fsw
