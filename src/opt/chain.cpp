#include "src/opt/chain.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "src/core/cost_model.hpp"

namespace fsw {
namespace {

void requireNoPrecedences(const Application& app, const char* who) {
  if (app.hasPrecedences()) {
    throw std::invalid_argument(std::string(who) +
                                ": requires an application without "
                                "precedence constraints");
  }
}

}  // namespace

std::vector<NodeId> chainOrderPeriod(const Application& app, CommModel m) {
  requireNoPrecedences(app, "chainOrderPeriod");
  auto cPrime = [&](NodeId k) {
    const auto& s = app.service(k);
    return m == CommModel::Overlap ? std::max(1.0, s.cost)
                                   : 1.0 + s.cost + s.selectivity;
  };
  std::vector<NodeId> filters;
  std::vector<NodeId> expanders;
  for (NodeId i = 0; i < app.size(); ++i) {
    (app.service(i).selectivity < 1.0 ? filters : expanders).push_back(i);
  }
  std::sort(filters.begin(), filters.end(),
            [&](NodeId a, NodeId b) { return cPrime(a) < cPrime(b); });
  std::sort(expanders.begin(), expanders.end(), [&](NodeId a, NodeId b) {
    return app.service(a).selectivity / cPrime(a) <
           app.service(b).selectivity / cPrime(b);
  });
  filters.insert(filters.end(), expanders.begin(), expanders.end());
  return filters;
}

std::vector<NodeId> chainOrderLatency(const Application& app) {
  requireNoPrecedences(app, "chainOrderLatency");
  std::vector<NodeId> order(app.size());
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const auto& sa = app.service(a);
    const auto& sb = app.service(b);
    return (1.0 - sa.selectivity) / (1.0 + sa.cost) >
           (1.0 - sb.selectivity) / (1.0 + sb.cost);
  });
  return order;
}

double chainPeriodValue(const Application& app,
                        const std::vector<NodeId>& order, CommModel m) {
  const CostModel costs(app, ExecutionGraph::chain(order));
  return costs.periodLowerBound(m);
}

double chainLatencyValue(const Application& app,
                         const std::vector<NodeId>& order) {
  const CostModel costs(app, ExecutionGraph::chain(order));
  return costs.latencyLowerBound();
}

ExecutionGraph noCommBaselineGraph(const Application& app) {
  requireNoPrecedences(app, "noCommBaselineGraph");
  std::vector<NodeId> filters;
  std::vector<NodeId> expanders;
  for (NodeId i = 0; i < app.size(); ++i) {
    (app.service(i).selectivity < 1.0 ? filters : expanders).push_back(i);
  }
  // Srivastava et al.: filters chained by increasing c / (1 - sigma).
  std::sort(filters.begin(), filters.end(), [&](NodeId a, NodeId b) {
    const auto& sa = app.service(a);
    const auto& sb = app.service(b);
    return sa.cost / (1.0 - sa.selectivity) < sb.cost / (1.0 - sb.selectivity);
  });
  ExecutionGraph g(app.size());
  for (std::size_t i = 0; i + 1 < filters.size(); ++i) {
    g.addEdge(filters[i], filters[i + 1]);
  }
  // Expanders benefit from the full filtering but never help anyone:
  // parallel leaves of the last filter (or isolated roots if no filter).
  if (!filters.empty()) {
    for (const NodeId e : expanders) g.addEdge(filters.back(), e);
  }
  return g;
}

double noCommPeriodValue(const Application& app, const ExecutionGraph& graph) {
  const CostModel costs(app, graph);
  double p = 0.0;
  for (NodeId i = 0; i < app.size(); ++i) {
    p = std::max(p, costs.at(i).ccomp);
  }
  return p;
}

}  // namespace fsw
