// Bi-criteria period/latency optimization — the extension the paper's
// conclusion names as future work ("given a threshold period, what is the
// optimal latency? and conversely").
//
// Key observation: for fixed port orders the INORDER rule set is a
// difference-constraint system whose *minimal* solution (the one the solver
// returns) minimizes every begin time simultaneously — so for each feasible
// lambda the extracted operation list has the minimal latency among
// schedules with those orders and that period. Sweeping lambda from the
// optimal period up to the optimal latency traces a period/latency front for
// one execution graph; taking the non-dominated union over candidate graphs
// (and over the other models' specialized schedules, every one-port OL being
// OVERLAP/OUTORDER-valid) gives the plan-level front.
#pragma once

#include <string>
#include <vector>

#include "src/core/application.hpp"
#include "src/core/model.hpp"
#include "src/oplist/plan.hpp"
#include "src/sched/orchestrator.hpp"

namespace fsw {

struct ParetoPoint {
  double period = 0.0;
  double latency = 0.0;
  Plan plan;
  std::string strategy;
};

struct BicriteriaOptions {
  std::size_t lambdaSamples = 12;   ///< sweep points per (graph, orders)
  std::size_t graphCandidates = 6;  ///< candidate execution graphs explored
  OrchestratorOptions orchestrator{};
  std::uint64_t seed = 1;
};

/// Non-dominated (period, latency) points achievable on one execution graph
/// under model m. Sorted by increasing period; every plan validates.
[[nodiscard]] std::vector<ParetoPoint> periodLatencyFrontForGraph(
    const Application& app, const ExecutionGraph& graph, CommModel m,
    const BicriteriaOptions& opt = {});

/// Plan-level front: non-dominated union over candidate execution graphs
/// (chain greedies, heuristic forests, random forests).
[[nodiscard]] std::vector<ParetoPoint> periodLatencyFront(
    const Application& app, CommModel m, const BicriteriaOptions& opt = {});

/// Minimal latency subject to period <= periodBound (infinity latency in the
/// returned point when the bound is unachievable).
[[nodiscard]] ParetoPoint minLatencyGivenPeriod(const Application& app,
                                                CommModel m,
                                                double periodBound,
                                                const BicriteriaOptions& opt = {});

/// Minimal period subject to latency <= latencyBound.
[[nodiscard]] ParetoPoint minPeriodGivenLatency(const Application& app,
                                                CommModel m,
                                                double latencyBound,
                                                const BicriteriaOptions& opt = {});

/// Removes dominated points and sorts by period (exposed for tests).
[[nodiscard]] std::vector<ParetoPoint> paretoFilter(
    std::vector<ParetoPoint> points);

}  // namespace fsw
