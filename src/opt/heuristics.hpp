// Heuristic plan construction for MinPeriod / MinLatency (both NP-hard for
// all models, Theorems 2 and 4): greedy parent insertion, hill climbing and
// simulated annealing over parent-function (forest) encodings.
//
// Candidates are scored with the cheap exact surrogates — the max-Cexec
// period bound (tight for OVERLAP, a relaxation for one-port) and Algorithm
// 1 for latency on forests — and the final winner is handed to the full
// orchestrator by the Optimizer facade.
#pragma once

#include <cstdint>

#include "src/common/thread_pool.hpp"
#include "src/core/application.hpp"
#include "src/core/execution_graph.hpp"
#include "src/core/model.hpp"

namespace fsw {

struct HeuristicOptions {
  std::size_t restarts = 4;
  std::size_t iterations = 4000;    ///< annealing steps per restart
  double initialTemperature = 1.0;  ///< relative to the initial score
  /// Restart r anneals with a PRNG derived from `seed` + r: restarts are
  /// independent chains that fan out over `pool` (nullptr = serial) and
  /// reduce deterministically (lowest score, then lowest restart index).
  std::uint64_t seed = 1;
  ThreadPool* pool = nullptr;
};

/// Greedy insertion: services are added one by one (filters by ascending
/// c/(1-sigma), then expanders), each picking the parent (or root) that
/// minimizes the surrogate objective.
[[nodiscard]] ExecutionGraph greedyForest(const Application& app, CommModel m,
                                          Objective obj);

/// Hill climbing over single-parent reassignments from a given start.
[[nodiscard]] ExecutionGraph hillClimbForest(const Application& app,
                                             CommModel m, Objective obj,
                                             ExecutionGraph start,
                                             std::size_t maxRounds = 50);

/// Simulated annealing over parent functions.
[[nodiscard]] ExecutionGraph annealForest(const Application& app, CommModel m,
                                          Objective obj,
                                          const HeuristicOptions& opt = {});

/// The surrogate score used by the heuristics (exposed for tests/benches).
[[nodiscard]] double surrogateScore(const Application& app,
                                    const ExecutionGraph& g, CommModel m,
                                    Objective obj);

}  // namespace fsw
