// Facade for the full MinPeriod / MinLatency problems: generate candidate
// execution graphs (chain greedies, no-comm baseline, greedy forest, hill
// climbing, annealing, exact forest search when n is small), orchestrate
// the best candidates under the target model, and return the best *valid*
// plan found together with its achieved objective.
#pragma once

#include <string>

#include "src/core/application.hpp"
#include "src/core/model.hpp"
#include "src/opt/heuristics.hpp"
#include "src/oplist/plan.hpp"
#include "src/sched/orchestrator.hpp"

namespace fsw {

struct OptimizerOptions {
  std::size_t exactForestMaxN = 6;  ///< exhaustive forest search cutoff
  std::size_t orchestrateTop = 3;   ///< candidates handed to the orchestrator
  HeuristicOptions heuristics{};
  OrchestratorOptions orchestrator{};
};

struct OptimizedPlan {
  Plan plan;
  double value = 0.0;          ///< achieved period or latency
  double surrogate = 0.0;      ///< the candidate's surrogate score
  std::string strategy;        ///< which candidate generator won
};

/// Solves MinPeriod or MinLatency for (app, m) heuristically (exactly for
/// small n via forest enumeration, per Prop 4 for the period).
[[nodiscard]] OptimizedPlan optimizePlan(const Application& app, CommModel m,
                                         Objective obj,
                                         const OptimizerOptions& opt = {});

}  // namespace fsw
