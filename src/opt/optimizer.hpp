// Facade for the full MinPeriod / MinLatency problems, built on the
// parallel plan-search engine:
//
//   1. every applicable CandidateSource in the registry proposes execution
//      graphs (fanned out over the thread pool);
//   2. proposals are deduplicated and surrogate-scored once per canonical
//      graph signature through a CandidateCache;
//   3. the top-K survivors are orchestrated under the target model (again
//      over the pool, with the order search itself pooled underneath);
//   4. a deterministic reduce — lowest value, then strategy name, then
//      proposal order — picks the winner, so pooled and serial runs return
//      identical plans.
#pragma once

#include <cstddef>
#include <string>

#include "src/common/thread_pool.hpp"
#include "src/core/application.hpp"
#include "src/core/model.hpp"
#include "src/oplist/plan.hpp"
#include "src/opt/candidate.hpp"
#include "src/opt/heuristics.hpp"
#include "src/sched/orchestrator.hpp"

namespace fsw {

struct OptimizerOptions {
  std::size_t exactForestMaxN = 6;  ///< exhaustive forest search cutoff
  std::size_t orchestrateTop = 3;   ///< candidates handed to the orchestrator
  /// Degree of parallelism: 1 forces a fully serial run (the benchmarks'
  /// --serial mode); any other value uses `pool` when set and otherwise the
  /// process-wide ThreadPool::shared(). Results are identical either way.
  std::size_t threads = 0;
  ThreadPool* pool = nullptr;  ///< explicit pool override (not owned)
  /// Candidate portfolio; nullptr = CandidateRegistry::builtin().
  const CandidateRegistry* registry = nullptr;
  HeuristicOptions heuristics{};
  OrchestratorOptions orchestrator{};
};

/// Observability counters for one engine request.
struct EngineStats {
  std::size_t sourcesRun = 0;     ///< applicable sources invoked
  std::size_t generated = 0;      ///< graphs proposed (pre-filter)
  std::size_t unique = 0;         ///< distinct signatures after dedup
  std::size_t duplicates = 0;     ///< proposals dropped by the dedup cache
  std::size_t scoreCacheHits = 0; ///< surrogate evaluations avoided
                                  ///< (= duplicates + sharedHits)
  std::size_t orchestrated = 0;   ///< candidates fully orchestrated
  /// Scores served from the PlanEngine's long-lived cross-request cache —
  /// work amortized against earlier requests (or a loaded cache dump).
  std::size_t sharedHits = 0;
  /// LRU entries this request's insertions evicted at the capacity bound.
  std::size_t evictions = 0;
  /// Dominated solves aborted by an incumbent bound — the TOTAL across
  /// phases (= seedBoundAborts + repairBoundAborts), kept as its own field
  /// so old readers of the wire stats block keep seeing the number they
  /// always saw.
  std::size_t boundAborts = 0;
  /// 1 when this batch member was served wholesale from an identical
  /// earlier member of the same optimizePlanBatch call.
  std::size_t crossRequestHits = 0;
  /// 1 when this request was served wholesale from the engine's full-result
  /// cache (an earlier identical request, possibly loaded from disk): the
  /// stored winner is returned with zero new orchestrations, so every other
  /// counter in this struct is 0.
  std::size_t resultCacheHits = 0;
  /// Hot-loop candidate evaluations (order-search solves and OUTORDER
  /// repair iterations) performed for this request.
  std::size_t evalProbes = 0;
  /// Buffer-growth events observed by the reusable per-worker evaluation
  /// scratch (constraint storage, solve vectors, arena blocks). In steady
  /// state this stays near the warm-up cost — allocsPerProbe() ~ 0.
  std::size_t scratchHeapAllocs = 0;
  /// Max bytes live at once in any evaluation arena of this request
  /// (merged by max, not sum, when shards are combined).
  std::size_t arenaBytesHighWater = 0;
  /// Wire bytes this request sent to / received from the fleet-shared
  /// remote result store (FSWF frame headers included): the GET that
  /// probed this key plus the PUT that published its winner. Store
  /// traffic is attributed per key to the batch member that asked — the
  /// representative carries the bytes, duplicates carry none — so summing
  /// over a batch counts every wire byte exactly once. Sharded runs sum
  /// these like the other counters.
  std::size_t storeBytesSent = 0;
  std::size_t storeBytesReceived = 0;

  /// Phase split of boundAborts (appended in wire stats v4+; zero when a
  /// peer predates the split). Seed-phase: order searches pruned during
  /// enumeration — the plain INORDER/latency searches plus the OUTORDER
  /// seed's derived bound, including whole candidates dominated below the
  /// analytic floor. Repair-phase: OUTORDER repair bisections cut short
  /// because their certified floor crossed the final-value incumbent.
  std::size_t seedBoundAborts = 0;
  std::size_t repairBoundAborts = 0;

  /// Scratch allocation discipline: growth events per hot-loop probe.
  [[nodiscard]] double allocsPerProbe() const {
    return evalProbes == 0 ? 0.0
                           : static_cast<double>(scratchHeapAllocs) /
                                 static_cast<double>(evalProbes);
  }
};

struct OptimizedPlan {
  Plan plan;
  double value = 0.0;          ///< achieved period or latency
  double surrogate = 0.0;      ///< the candidate's surrogate score
  std::string strategy;        ///< which candidate source won
  EngineStats stats{};
};

/// One unit of serving traffic: solve (app, model, objective) under the
/// given per-request knobs. Requests are values — a serving front end can
/// queue, shard, serialize (src/io/serialize.hpp) and replay them freely.
/// This is the canonical request form shared by every serving path:
/// single-shot optimizePlan, PlanEngine batches, PlanServer queues,
/// ShardedPlanEngine routing and the wire protocol.
struct PlanRequest {
  Application app;
  CommModel model = CommModel::Overlap;
  Objective objective = Objective::Period;
  OptimizerOptions options{};
};

/// Solves MinPeriod or MinLatency for (app, m) heuristically (exactly for
/// small n via forest enumeration, per Prop 4 for the period).
///
/// Since PR 2 this is a thin adapter over the process-wide PlanEngine
/// (src/serve/plan_engine.hpp): the call is served as a one-request batch
/// against the engine's shared pool and cross-request score cache. Results
/// are bit-identical to a fresh-cache run — the cache memoizes pure
/// functions only — and `threads = 1` still forces a fully serial solve.
/// Batched traffic should call PlanEngine::optimizeBatch directly.
[[nodiscard]] OptimizedPlan optimizePlan(const Application& app, CommModel m,
                                         Objective obj,
                                         const OptimizerOptions& opt = {});

}  // namespace fsw
