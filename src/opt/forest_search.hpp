// Exhaustive search over forest execution graphs.
//
// Prop 4: for MinPeriod without precedence constraints (any model), some
// optimal execution graph is a forest, so enumerating parent functions
// (parent[i] in {none} union F \ {i}, acyclic) is an *exact* MinPeriod
// algorithm — exponential, usable up to n ~ 7. For MinLatency the optimum
// may be a genuine DAG (the fork-join of Prop 13), so the same enumeration
// is a strong baseline rather than exact; MinLatency stays NP-hard even on
// forests (Prop 17).
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "src/core/application.hpp"
#include "src/core/execution_graph.hpp"
#include "src/core/model.hpp"

namespace fsw {

struct ForestSearchResult {
  double value = std::numeric_limits<double>::infinity();
  ExecutionGraph graph{0};
  std::size_t explored = 0;  ///< acyclic parent functions evaluated
};

/// Enumerates every forest over app's services that respects its precedence
/// constraints and keeps the best under `objective` (smaller is better).
/// Throws std::invalid_argument when n > maxN (cost guard).
[[nodiscard]] ForestSearchResult exactForestSearch(
    const Application& app,
    const std::function<double(const ExecutionGraph&)>& objective,
    std::size_t maxN = 8);

/// Exact MinPeriod over forests with the cheap exact evaluations:
/// OVERLAP uses the (tight, Prop 1) max-Cexec bound. For the one-port models
/// the same bound is a relaxation; pass `orchestrated = true` to evaluate
/// candidates with the full one-port orchestrator instead (much slower).
[[nodiscard]] ForestSearchResult exactForestMinPeriod(const Application& app,
                                                      CommModel m,
                                                      bool orchestrated = false,
                                                      std::size_t maxN = 8);

/// Exact-on-forests MinLatency (Algorithm 1 evaluates each candidate).
[[nodiscard]] ForestSearchResult exactForestMinLatency(const Application& app,
                                                       std::size_t maxN = 8);

}  // namespace fsw
