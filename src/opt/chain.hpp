// Polynomial chain plans.
//
//  * MinPeriod restricted to linear chains (Prop 8): filters (sigma < 1)
//    first by increasing c'_k, then expanders by increasing sigma_k / c'_k,
//    with c'_k = 1 + c_k + sigma_k for the one-port models and
//    c'_k = max(1, c_k) for OVERLAP.
//  * MinLatency restricted to linear chains (Prop 16): decreasing
//    (1 - sigma_i) / (1 + c_i), identical for all models.
//  * The no-communication baseline of Srivastava et al. [1]: filters chained
//    by increasing c_i / (1 - sigma_i), expanders attached as parallel
//    leaves of the full filter chain — optimal when communications are free,
//    and the plan that counter-example B.1 shows breaks down under OVERLAP.
#pragma once

#include <vector>

#include "src/core/application.hpp"
#include "src/core/execution_graph.hpp"
#include "src/core/model.hpp"

namespace fsw {

/// Prop 8 service order. Only valid without precedence constraints.
[[nodiscard]] std::vector<NodeId> chainOrderPeriod(const Application& app,
                                                   CommModel m);

/// Prop 16 service order. Only valid without precedence constraints.
[[nodiscard]] std::vector<NodeId> chainOrderLatency(const Application& app);

/// Period of the chain execution graph following `order` (the max-Cexec
/// bound, achievable on chains for all three models).
[[nodiscard]] double chainPeriodValue(const Application& app,
                                      const std::vector<NodeId>& order,
                                      CommModel m);

/// Latency of the chain execution graph following `order` (the serial path).
[[nodiscard]] double chainLatencyValue(const Application& app,
                                       const std::vector<NodeId>& order);

/// The [1]-optimal execution graph when communications are free.
[[nodiscard]] ExecutionGraph noCommBaselineGraph(const Application& app);

/// Period of a graph when communication is free: max_k Ccomp(k).
[[nodiscard]] double noCommPeriodValue(const Application& app,
                                       const ExecutionGraph& graph);

}  // namespace fsw
