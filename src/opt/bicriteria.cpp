#include "src/opt/bicriteria.hpp"

#include <algorithm>
#include <limits>

#include "src/common/prng.hpp"
#include "src/oplist/validate.hpp"
#include "src/opt/chain.hpp"
#include "src/opt/heuristics.hpp"
#include "src/sched/latency.hpp"
#include "src/sched/overlap.hpp"
#include "src/workload/generator.hpp"

namespace fsw {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void addPoint(std::vector<ParetoPoint>& points, const Application& app,
              CommModel m, const ExecutionGraph& graph, OperationList ol,
              std::string strategy) {
  if (!validate(app, graph, ol, m).valid) return;
  ParetoPoint p;
  p.period = ol.period();
  p.latency = ol.latency();
  p.plan = {graph, std::move(ol)};
  p.strategy = std::move(strategy);
  points.push_back(std::move(p));
}

}  // namespace

std::vector<ParetoPoint> paretoFilter(std::vector<ParetoPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              return a.period < b.period ||
                     (a.period == b.period && a.latency < b.latency);
            });
  std::vector<ParetoPoint> front;
  double bestLatency = kInf;
  for (auto& p : points) {
    if (p.latency < bestLatency - 1e-9) {
      bestLatency = p.latency;
      front.push_back(std::move(p));
    }
  }
  return front;
}

std::vector<ParetoPoint> periodLatencyFrontForGraph(
    const Application& app, const ExecutionGraph& graph, CommModel m,
    const BicriteriaOptions& opt) {
  std::vector<ParetoPoint> points;

  // One-port schedules are valid under every model: sweep lambda for each
  // candidate port-order set.
  const std::vector<PortOrders> orderCandidates = {
      PortOrders::heuristic(app, graph),
      PortOrders::canonical(graph),
      PortOrders::listLatency(app, graph),
  };
  for (const auto& orders : orderCandidates) {
    const auto minPeriod = inorderPeriodForOrders(app, graph, orders);
    const auto minLatency = oneportLatencyForOrders(app, graph, orders);
    if (!minPeriod || !minLatency) continue;
    const double lo = minPeriod->value;
    const double hi = std::max(lo, minLatency->value);
    addPoint(points, app, m, graph, minPeriod->ol, "orders/min-period");
    addPoint(points, app, m, graph, minLatency->ol, "orders/min-latency");
    const std::size_t samples = std::max<std::size_t>(2, opt.lambdaSamples);
    for (std::size_t s = 1; s + 1 < samples; ++s) {
      const double lambda =
          lo + (hi - lo) * static_cast<double>(s) / (samples - 1);
      if (auto ol = inorderScheduleAtLambda(app, graph, orders, lambda)) {
        addPoint(points, app, m, graph, std::move(*ol), "orders/sweep");
      }
    }
  }

  // Model-specific endpoints.
  if (m == CommModel::Overlap) {
    addPoint(points, app, m, graph, overlapPeriodSchedule(app, graph),
             "overlap/min-period");
    addPoint(points, app, m, graph, overlapLatencyFluid(app, graph),
             "overlap/fluid-latency");
  }
  if (m == CommModel::OutOrder) {
    OutorderOptions oo = opt.orchestrator.outorder;
    oo.inorder = opt.orchestrator.order;
    const auto r = outorderOrchestratePeriod(app, graph, oo);
    addPoint(points, app, m, graph, r.ol, "outorder/min-period");
  }
  if (graph.isForest()) {
    addPoint(points, app, m, graph, treeLatencySchedule(app, graph).ol,
             "tree/min-latency");
  }
  return paretoFilter(std::move(points));
}

std::vector<ParetoPoint> periodLatencyFront(const Application& app,
                                            CommModel m,
                                            const BicriteriaOptions& opt) {
  std::vector<ExecutionGraph> graphs;
  if (!app.hasPrecedences()) {
    graphs.push_back(ExecutionGraph::chain(chainOrderPeriod(app, m)));
    graphs.push_back(ExecutionGraph::chain(chainOrderLatency(app)));
    graphs.push_back(noCommBaselineGraph(app));
  }
  graphs.push_back(greedyForest(app, m, Objective::Period));
  graphs.push_back(greedyForest(app, m, Objective::Latency));
  Prng rng(opt.seed);
  while (graphs.size() < opt.graphCandidates + 2) {
    graphs.push_back(randomForest(app, rng));
  }

  std::vector<ParetoPoint> points;
  for (const auto& g : graphs) {
    if (!g.respects(app)) continue;
    auto sub = periodLatencyFrontForGraph(app, g, m, opt);
    for (auto& p : sub) points.push_back(std::move(p));
  }
  return paretoFilter(std::move(points));
}

ParetoPoint minLatencyGivenPeriod(const Application& app, CommModel m,
                                  double periodBound,
                                  const BicriteriaOptions& opt) {
  ParetoPoint best;
  best.period = kInf;
  best.latency = kInf;
  for (auto& p : periodLatencyFront(app, m, opt)) {
    if (p.period <= periodBound + 1e-9 && p.latency < best.latency) {
      best = std::move(p);
    }
  }
  return best;
}

ParetoPoint minPeriodGivenLatency(const Application& app, CommModel m,
                                  double latencyBound,
                                  const BicriteriaOptions& opt) {
  ParetoPoint best;
  best.period = kInf;
  best.latency = kInf;
  for (auto& p : periodLatencyFront(app, m, opt)) {
    if (p.latency <= latencyBound + 1e-9 && p.period < best.period) {
      best = std::move(p);
    }
  }
  return best;
}

}  // namespace fsw
