#include "src/opt/optimizer.hpp"

#include "src/serve/plan_engine.hpp"

namespace fsw {

OptimizedPlan optimizePlan(const Application& app, CommModel m, Objective obj,
                           const OptimizerOptions& opt) {
  // The engine core lives in src/serve/plan_engine.cpp; this facade serves
  // the call as a one-request batch against the process-wide engine, whose
  // shared cache can only memoize pure functions — winners are bit-identical
  // to a fresh-cache run.
  return PlanEngine::shared().optimize(app, m, obj, opt);
}

}  // namespace fsw
