#include "src/opt/optimizer.hpp"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

namespace fsw {
namespace {

struct Candidate {
  ExecutionGraph graph{0};
  std::string signature;
  std::string strategy;
  double surrogate = std::numeric_limits<double>::infinity();
};

ThreadPool* resolvePool(const OptimizerOptions& opt) {
  if (opt.threads == 1) return nullptr;  // the --serial escape hatch
  if (opt.pool != nullptr) return opt.pool;
  ThreadPool& shared = ThreadPool::shared();
  return shared.threadCount() > 1 ? &shared : nullptr;
}

}  // namespace

OptimizedPlan optimizePlan(const Application& app, CommModel m, Objective obj,
                           const OptimizerOptions& opt) {
  ThreadPool* pool = resolvePool(opt);
  const CandidateRegistry& registry =
      opt.registry != nullptr ? *opt.registry : CandidateRegistry::builtin();
  HeuristicOptions heuristics = opt.heuristics;
  heuristics.pool = pool;  // anneal restarts share the engine pool
  const CandidateContext ctx{app, m, obj, opt.exactForestMaxN, heuristics};

  OptimizedPlan best;
  best.value = std::numeric_limits<double>::infinity();

  // 1. Fan candidate generation out across the applicable sources.
  std::vector<const CandidateSource*> active;
  for (const auto& source : registry.sources()) {
    if (source->applicable(ctx)) active.push_back(source.get());
  }
  best.stats.sourcesRun = active.size();
  auto proposals = parallelMap<std::vector<ExecutionGraph>>(
      pool, active.size(),
      [&](std::size_t i) { return active[i]->generate(ctx); });

  // 2. Flatten in registry order (the deterministic tie-break), drop graphs
  //    that do not respect the application, and compute signatures.
  std::vector<Candidate> flat;
  for (std::size_t i = 0; i < proposals.size(); ++i) {
    for (ExecutionGraph& g : proposals[i]) {
      ++best.stats.generated;
      if (!g.respects(app)) continue;
      Candidate c;
      c.signature = graphSignature(g);
      c.graph = std::move(g);
      c.strategy = std::string(active[i]->name());
      flat.push_back(std::move(c));
    }
  }

  // 3. Surrogate-score every proposal through the memo (duplicates hit the
  //    cache), then dedup so each distinct graph is orchestrated once.
  CandidateCache cache;
  const auto scores = parallelMap<double>(pool, flat.size(), [&](std::size_t k) {
    return cache.surrogate(flat[k].signature, app, flat[k].graph, m, obj);
  });
  std::vector<Candidate> candidates;
  for (std::size_t k = 0; k < flat.size(); ++k) {
    flat[k].surrogate = scores[k];
    if (cache.admit(flat[k].signature)) {
      candidates.push_back(std::move(flat[k]));
    }
  }
  const CandidateCache::Stats cs = cache.stats();
  best.stats.unique = cs.unique;
  best.stats.duplicates = cs.duplicates;
  best.stats.scoreCacheHits = cs.scoreHits;

  // 4. Deterministic ranking: surrogate, then strategy name, then proposal
  //    order (stable sort preserves it).
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     if (a.surrogate != b.surrogate) {
                       return a.surrogate < b.surrogate;
                     }
                     return a.strategy < b.strategy;
                   });

  // 5. Orchestrate the top-K in parallel; the order search inside each
  //    orchestration reuses the same pool (nested fan-out is safe).
  OrchestratorOptions orch = opt.orchestrator;
  orch.order.pool = pool;
  orch.outorder.pool = pool;
  orch.outorder.inorder.pool = pool;  // the OUTORDER path's INORDER seed
  const std::size_t top = std::min(opt.orchestrateTop, candidates.size());
  best.stats.orchestrated = top;
  auto results = parallelMap<Orchestration>(pool, top, [&](std::size_t k) {
    return orchestrate(app, candidates[k].graph, m, obj, orch);
  });

  // 6. Deterministic winner: strictly lower value wins; ties keep the
  //    earliest candidate in the ranking of step 4.
  for (std::size_t k = 0; k < top; ++k) {
    if (results[k].result.value < best.value) {
      best.value = results[k].result.value;
      best.plan = {std::move(candidates[k].graph),
                   std::move(results[k].result.ol)};
      best.surrogate = candidates[k].surrogate;
      best.strategy = candidates[k].strategy;
    }
  }
  return best;
}

}  // namespace fsw
