#include "src/opt/optimizer.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "src/opt/chain.hpp"
#include "src/opt/forest_search.hpp"

namespace fsw {
namespace {

struct Candidate {
  ExecutionGraph graph{0};
  double surrogate = std::numeric_limits<double>::infinity();
  std::string strategy;
};

}  // namespace

OptimizedPlan optimizePlan(const Application& app, CommModel m, Objective obj,
                           const OptimizerOptions& opt) {
  std::vector<Candidate> candidates;
  auto add = [&](ExecutionGraph g, std::string strategy) {
    if (!g.respects(app)) return;
    Candidate c{std::move(g), 0.0, std::move(strategy)};
    c.surrogate = surrogateScore(app, c.graph, m, obj);
    candidates.push_back(std::move(c));
  };

  if (!app.hasPrecedences()) {
    if (obj == Objective::Period) {
      add(ExecutionGraph::chain(chainOrderPeriod(app, m)), "chain-greedy");
    } else {
      add(ExecutionGraph::chain(chainOrderLatency(app)), "chain-greedy");
    }
    add(noCommBaselineGraph(app), "no-comm-baseline");
  }
  add(greedyForest(app, m, obj), "greedy-forest");
  add(hillClimbForest(app, m, obj, greedyForest(app, m, obj)), "hill-climb");
  add(annealForest(app, m, obj, opt.heuristics), "anneal");
  if (app.size() <= opt.exactForestMaxN) {
    if (obj == Objective::Period) {
      add(exactForestMinPeriod(app, m).graph, "exact-forest");
    } else {
      add(exactForestMinLatency(app).graph, "exact-forest");
    }
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.surrogate < b.surrogate;
            });

  OptimizedPlan best;
  best.value = std::numeric_limits<double>::infinity();
  const std::size_t top = std::min(opt.orchestrateTop, candidates.size());
  for (std::size_t k = 0; k < top; ++k) {
    auto& cand = candidates[k];
    const Orchestration orch =
        orchestrate(app, cand.graph, m, obj, opt.orchestrator);
    if (orch.result.value < best.value) {
      best.value = orch.result.value;
      best.plan = {std::move(cand.graph), orch.result.ol};
      best.surrogate = cand.surrogate;
      best.strategy = cand.strategy;
    }
  }
  return best;
}

}  // namespace fsw
