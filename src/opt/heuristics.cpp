#include "src/opt/heuristics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "src/common/prng.hpp"
#include "src/core/cost_model.hpp"
#include "src/sched/latency.hpp"

namespace fsw {
namespace {

/// A parent vector that always respects the application's precedences: a
/// topological chain. Used to seed searches on constrained instances.
std::vector<NodeId> respectingSeed(const Application& app) {
  const std::size_t n = app.size();
  std::vector<NodeId> parent(n, kNoNode);
  if (app.hasPrecedences()) {
    const auto order = app.topologicalOrder();
    for (std::size_t k = 1; k < n; ++k) parent[order[k]] = order[k - 1];
  }
  return parent;
}

std::vector<NodeId> parentsOf(const ExecutionGraph& g) {
  std::vector<NodeId> parent(g.size(), kNoNode);
  for (NodeId i = 0; i < g.size(); ++i) {
    const auto& preds = g.predecessors(i);
    if (!preds.empty()) parent[i] = preds.front();
  }
  return parent;
}

bool acyclicParents(const std::vector<NodeId>& parent) {
  const std::size_t n = parent.size();
  for (NodeId i = 0; i < n; ++i) {
    NodeId v = parent[i];
    std::size_t steps = 0;
    while (v != kNoNode && ++steps <= n) v = parent[v];
    if (v != kNoNode) return false;
  }
  return true;
}

double scoreParents(const Application& app, const std::vector<NodeId>& parent,
                    CommModel m, Objective obj) {
  const ExecutionGraph g = ExecutionGraph::fromParents(parent);
  if (!g.respects(app)) return std::numeric_limits<double>::infinity();
  return obj == Objective::Period
             ? CostModel(app, g).periodLowerBound(m)
             : treeLatencyValue(app, g);
}

}  // namespace

double surrogateScore(const Application& app, const ExecutionGraph& g,
                      CommModel m, Objective obj) {
  if (obj == Objective::Period) {
    return CostModel(app, g).periodLowerBound(m);
  }
  return g.isForest() ? treeLatencyValue(app, g)
                      : CostModel(app, g).latencyLowerBound();
}

ExecutionGraph greedyForest(const Application& app, CommModel m,
                            Objective obj) {
  const std::size_t n = app.size();
  // Insertion order: filters by ascending c/(1-sigma), then expanders by
  // ascending cost (cheap useful filters first, so later services can hang
  // off already-filtered data).
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const auto& sa = app.service(a);
    const auto& sb = app.service(b);
    const bool fa = sa.selectivity < 1.0;
    const bool fb = sb.selectivity < 1.0;
    if (fa != fb) return fa;
    if (fa) {
      return sa.cost / (1.0 - sa.selectivity) <
             sb.cost / (1.0 - sb.selectivity);
    }
    return sa.cost < sb.cost;
  });

  std::vector<NodeId> parent(n, kNoNode);
  std::vector<bool> placed(n, false);
  for (const NodeId v : order) {
    placed[v] = true;
    // Score only the sub-application of placed services: build a parent
    // vector where unplaced services are isolated roots (their score
    // contribution is placement-independent noise shared by all choices).
    double bestScore = std::numeric_limits<double>::infinity();
    NodeId bestParent = kNoNode;
    for (NodeId cand = 0; cand <= n; ++cand) {
      const NodeId p = (cand == n) ? kNoNode : cand;
      if (p == v || (p != kNoNode && !placed[p])) continue;
      parent[v] = p;
      if (!acyclicParents(parent)) continue;
      const double s = scoreParents(app, parent, m, obj);
      if (s < bestScore) {
        bestScore = s;
        bestParent = p;
      }
    }
    parent[v] = bestParent;
  }
  ExecutionGraph g = ExecutionGraph::fromParents(parent);
  if (!g.respects(app)) {
    // Constrained instances may defeat the insertion order; fall back to
    // the always-respecting topological chain.
    return ExecutionGraph::fromParents(respectingSeed(app));
  }
  return g;
}

ExecutionGraph hillClimbForest(const Application& app, CommModel m,
                               Objective obj, ExecutionGraph start,
                               std::size_t maxRounds) {
  const std::size_t n = app.size();
  std::vector<NodeId> parent = parentsOf(start);
  double best = scoreParents(app, parent, m, obj);
  for (std::size_t round = 0; round < maxRounds; ++round) {
    bool improved = false;
    for (NodeId v = 0; v < n; ++v) {
      const NodeId old = parent[v];
      for (NodeId cand = 0; cand <= n; ++cand) {
        const NodeId p = (cand == n) ? kNoNode : cand;
        if (p == v || p == old) continue;
        parent[v] = p;
        if (!acyclicParents(parent)) continue;
        const double s = scoreParents(app, parent, m, obj);
        if (s < best - 1e-12) {
          best = s;
          improved = true;
          goto nextNode;  // keep the move
        }
      }
      parent[v] = old;
    nextNode:;
    }
    if (!improved) break;
  }
  return ExecutionGraph::fromParents(parent);
}

ExecutionGraph annealForest(const Application& app, CommModel m, Objective obj,
                            const HeuristicOptions& opt) {
  const std::size_t n = app.size();
  const std::vector<NodeId> seedParent = respectingSeed(app);
  const double seedScore = scoreParents(app, seedParent, m, obj);

  struct Chain {
    std::vector<NodeId> parent;
    double score = 0.0;
  };

  // One annealing chain: a pure function of its restart index (PRNG derived
  // from seed + restart), so chains fan out over the pool and reproduce.
  auto runChain = [&](std::size_t restart) -> Chain {
    Prng rng(opt.seed + restart);
    std::vector<NodeId> parent = seedParent;
    double score = seedScore;
    Chain best{parent, score};
    double temp = opt.initialTemperature * std::max(score, 1.0);
    const double cooling =
        std::pow(1e-4, 1.0 / static_cast<double>(opt.iterations));

    for (std::size_t it = 0; it < opt.iterations; ++it, temp *= cooling) {
      const NodeId v =
          static_cast<NodeId>(rng.uniformInt(0, static_cast<std::int64_t>(n) - 1));
      const auto cand = rng.uniformInt(0, static_cast<std::int64_t>(n));
      const NodeId p = (cand == static_cast<std::int64_t>(n))
                           ? kNoNode
                           : static_cast<NodeId>(cand);
      if (p == v) continue;
      const NodeId old = parent[v];
      if (p == old) continue;
      parent[v] = p;
      if (!acyclicParents(parent)) {
        parent[v] = old;
        continue;
      }
      const double s = scoreParents(app, parent, m, obj);
      const double delta = s - score;
      if (delta <= 0.0 ||
          (temp > 1e-12 && rng.uniform() < std::exp(-delta / temp))) {
        score = s;
        if (score < best.score) {
          best.score = score;
          best.parent = parent;
        }
      } else {
        parent[v] = old;
      }
    }
    return best;
  };

  const std::size_t restarts = std::max<std::size_t>(1, opt.restarts);
  const auto chains = parallelMap<Chain>(opt.pool, restarts, runChain);
  // Deterministic reduce: lowest score, ties to the lowest restart index.
  const Chain* best = &chains.front();
  for (const Chain& c : chains) {
    if (c.score < best->score) best = &c;
  }
  return ExecutionGraph::fromParents(best->parent);
}

}  // namespace fsw
