// The pluggable candidate layer of the plan-search engine.
//
// Every way of proposing execution graphs — the polynomial chain greedies
// (Prop 8 / Prop 16), the no-communication baseline of [1], the forest
// heuristics, the exact forest enumeration (Prop 4) — implements one
// interface, CandidateSource, and registers in a CandidateRegistry. The
// optimizer facade no longer hard-codes its portfolio: it asks the registry
// for applicable sources, fans their generation out over a thread pool, and
// dedups/score-memoizes the proposals through a CandidateCache keyed by a
// canonical ExecutionGraph signature. New search strategies (future PRs:
// beam search, cost-bounded pruning, learned proposers) plug in by
// registering a source — no facade changes.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/application.hpp"
#include "src/core/execution_graph.hpp"
#include "src/core/model.hpp"
#include "src/opt/heuristics.hpp"

namespace fsw {

/// Everything a source may consult when proposing graphs.
struct CandidateContext {
  const Application& app;
  CommModel model;
  Objective objective;
  std::size_t exactForestMaxN = 6;  ///< exhaustive forest search cutoff
  HeuristicOptions heuristics{};
};

/// A named generator of candidate execution graphs. Implementations must be
/// deterministic functions of the context (all randomness seeded from
/// `heuristics.seed`) and safe to call concurrently with other sources.
class CandidateSource {
 public:
  virtual ~CandidateSource() = default;

  /// Stable identifier; doubles as the winning plan's `strategy` label and
  /// as a deterministic tie-break key, so keep names unique and meaningful.
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Whether this source can propose anything for the context (e.g. the
  /// chain greedies require an application without precedences).
  [[nodiscard]] virtual bool applicable(const CandidateContext& ctx) const;

  /// Proposes zero or more candidate graphs. Graphs that do not respect the
  /// application are discarded by the engine, so sources may be optimistic.
  [[nodiscard]] virtual std::vector<ExecutionGraph> generate(
      const CandidateContext& ctx) const = 0;
};

/// An ordered collection of sources. Registration order is part of the
/// engine's deterministic tie-break (earlier sources win ties), so the
/// built-in order is fixed and extensions append.
class CandidateRegistry {
 public:
  CandidateRegistry() = default;
  CandidateRegistry(CandidateRegistry&&) = default;
  CandidateRegistry& operator=(CandidateRegistry&&) = default;

  /// Appends a source. Throws std::invalid_argument on a duplicate name.
  void add(std::unique_ptr<CandidateSource> source);

  [[nodiscard]] const std::vector<std::unique_ptr<CandidateSource>>& sources()
      const noexcept {
    return sources_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return sources_.size(); }

  /// The source with the given name, or nullptr.
  [[nodiscard]] const CandidateSource* find(std::string_view name) const;

  /// The immutable built-in portfolio: chain-greedy, no-comm-baseline,
  /// greedy-forest, hill-climb, anneal, exact-forest (in that order).
  static const CandidateRegistry& builtin();

  /// A fresh copy of the built-in portfolio that callers may extend.
  static CandidateRegistry makeBuiltin();

 private:
  std::vector<std::unique_ptr<CandidateSource>> sources_;
};

/// Canonical signature of an execution graph: node count plus the sorted
/// edge list. Two graphs have equal signatures iff they are equal, so the
/// signature is a sound memoization key.
[[nodiscard]] std::string graphSignature(const ExecutionGraph& g);

/// Thread-safe dedup + surrogate-score memo for one optimizer run. All
/// methods may be called concurrently from pool workers; counters are only
/// exact once the parallel region has joined.
class CandidateCache {
 public:
  struct Stats {
    std::size_t unique = 0;      ///< distinct signatures admitted
    std::size_t duplicates = 0;  ///< proposals rejected as already seen
    std::size_t scoreHits = 0;   ///< surrogate evaluations served from memo
    std::size_t scoreMisses = 0; ///< surrogate evaluations computed
  };

  /// True exactly once per distinct signature (the caller keeps the
  /// candidate); false for every later duplicate.
  [[nodiscard]] bool admit(const std::string& signature);

  /// Memoized surrogateScore(app, g, model, objective) keyed by signature.
  [[nodiscard]] double surrogate(const std::string& signature,
                                 const Application& app,
                                 const ExecutionGraph& g, CommModel m,
                                 Objective obj);

  [[nodiscard]] Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, double> scores_;
  std::unordered_set<std::string> seen_;
  Stats stats_{};
};

}  // namespace fsw
