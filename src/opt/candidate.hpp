// The pluggable candidate layer of the plan-search engine.
//
// Every way of proposing execution graphs — the polynomial chain greedies
// (Prop 8 / Prop 16), the no-communication baseline of [1], the forest
// heuristics, the exact forest enumeration (Prop 4) — implements one
// interface, CandidateSource, and registers in a CandidateRegistry. The
// optimizer facade no longer hard-codes its portfolio: the PlanEngine asks
// the registry for applicable sources, fans their generation out over a
// thread pool, dedups proposals within the request, and memoizes surrogate
// scores through a shared CandidateCache keyed by canonical application /
// ExecutionGraph signatures. New search strategies (future PRs: beam
// search, learned proposers) plug in by registering a source — no facade
// changes.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/lru_cache.hpp"
#include "src/core/application.hpp"
#include "src/core/execution_graph.hpp"
#include "src/core/model.hpp"
#include "src/opt/heuristics.hpp"

namespace fsw {

/// Everything a source may consult when proposing graphs.
struct CandidateContext {
  const Application& app;
  CommModel model;
  Objective objective;
  std::size_t exactForestMaxN = 6;  ///< exhaustive forest search cutoff
  HeuristicOptions heuristics{};
};

/// A named generator of candidate execution graphs. Implementations must be
/// deterministic functions of the context (all randomness seeded from
/// `heuristics.seed`) and safe to call concurrently with other sources.
class CandidateSource {
 public:
  virtual ~CandidateSource() = default;

  /// Stable identifier; doubles as the winning plan's `strategy` label and
  /// as a deterministic tie-break key, so keep names unique and meaningful.
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Whether this source can propose anything for the context (e.g. the
  /// chain greedies require an application without precedences).
  [[nodiscard]] virtual bool applicable(const CandidateContext& ctx) const;

  /// Proposes zero or more candidate graphs. Graphs that do not respect the
  /// application are discarded by the engine, so sources may be optimistic.
  [[nodiscard]] virtual std::vector<ExecutionGraph> generate(
      const CandidateContext& ctx) const = 0;
};

/// An ordered collection of sources. Registration order is part of the
/// engine's deterministic tie-break (earlier sources win ties), so the
/// built-in order is fixed and extensions append.
///
/// Naming a portfolio is the explicit opt-in to *portable* request keys:
/// a named portfolio's identity is its name plus the ordered source-name
/// list (portfolioFingerprint), so two processes that register
/// behaviorally identical sources under the same names produce identical
/// keys — the precondition for a shared cross-process cache. The name is
/// a contract: it must identify the sources' behavior, so rename extended
/// or modified copies of the built-in. An *unnamed* registry stays
/// process-local — the serving layer falls back to pointer identity for
/// it, which keeps two anonymous registries distinct even when their
/// source names collide.
class CandidateRegistry {
 public:
  CandidateRegistry() = default;  ///< unnamed: process-local key identity
  /// A portfolio with a stable name (non-empty, no whitespace; throws
  /// std::invalid_argument otherwise).
  explicit CandidateRegistry(std::string name);
  CandidateRegistry(CandidateRegistry&&) = default;
  CandidateRegistry& operator=(CandidateRegistry&&) = default;

  /// Appends a source. Throws std::invalid_argument on a duplicate, empty
  /// or whitespace-containing name (names are file-format tokens).
  void add(std::unique_ptr<CandidateSource> source);

  /// The portfolio name; empty for an unnamed (process-local) registry.
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Names the portfolio (opting in to portable keys); same validity
  /// rules as the constructor.
  void setName(std::string name);

  [[nodiscard]] const std::vector<std::unique_ptr<CandidateSource>>& sources()
      const noexcept {
    return sources_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return sources_.size(); }

  /// The source with the given name, or nullptr.
  [[nodiscard]] const CandidateSource* find(std::string_view name) const;

  /// The immutable built-in portfolio, named "builtin": chain-greedy,
  /// no-comm-baseline, greedy-forest, hill-climb, anneal, exact-forest
  /// (in that order).
  static const CandidateRegistry& builtin();

  /// A fresh copy of the built-in portfolio that callers may extend.
  /// Extended copies should be renamed — the fingerprint also covers the
  /// source list, but a distinct name keeps keys self-describing.
  static CandidateRegistry makeBuiltin();

 private:
  std::string name_;  ///< empty = unnamed (process-local)
  std::vector<std::unique_ptr<CandidateSource>> sources_;
};

/// The portable identity of a named portfolio: `name[src1,src2,...]` —
/// its name plus the ordered source-name list. A pure function of
/// registration (never of object identity), so it is stable across
/// processes and safe inside persisted cache keys. Whitespace-free by the
/// registry's naming rules. Only meaningful for named registries: the
/// serving layer keys unnamed ones by pointer instead.
[[nodiscard]] std::string portfolioFingerprint(const CandidateRegistry& registry);

/// Canonical signature of an execution graph: node count plus the sorted
/// edge list. Two graphs have equal signatures iff they are equal, so the
/// signature is a sound memoization key.
[[nodiscard]] std::string graphSignature(const ExecutionGraph& g);

/// Canonical signature of an application: service count, then each
/// service's (cost, selectivity) at full precision, then the sorted
/// precedence edges. Whitespace-free, so it can prefix cache keys that
/// survive the plain-text (de)serializer. Service names are excluded —
/// they never affect plan values.
///
/// Format contract (load-bearing for near-key warm starts): the signature
/// is ';'-separated segments where "a<n>" and the sorted ";p<from>><to>"
/// precedence segments are STRUCTURAL and the per-service "<cost>:<sel>"
/// segments are PARAMETRIC. structuralPrefixOfKey (src/serve/bound_board.hpp)
/// splits request keys on exactly this shape — two applications share a
/// structural prefix iff they differ only in costs/selectivities. Changing
/// the segment grammar here requires updating that splitter in lockstep.
[[nodiscard]] std::string applicationSignature(const Application& app);

/// Thread-safe surrogate-score memo. PR 1 instantiated one per optimizer
/// run; the PlanEngine now keeps a single long-lived instance shared
/// across requests, so the memo is LRU-bounded: `capacity` caps the
/// number of retained scores (0 = unbounded) and the least recently used
/// entry is evicted first. Eviction is a deterministic function of the
/// operation sequence (strict LRU, no sampling or timing dependence): the
/// engine probes and fills the cache in serial index-ordered passes
/// around its parallel scoring region, so a serial request sequence
/// always evicts identically. Concurrent requests interleave their passes
/// scheduler-dependently — that can reorder evictions and per-request hit
/// counters, never the memoized values (they are pure functions of the
/// key), so winners are unaffected. Counters are only exact once
/// concurrent callers have joined.
///
/// A thin domain wrapper over the shared LruCache machinery
/// (src/common/lru_cache.hpp) — the eviction/stats discipline the
/// determinism contract relies on has a single implementation, shared
/// with ResultCache.
class CandidateCache {
 public:
  struct Stats {
    std::size_t scoreHits = 0;   ///< probes served from the memo
    std::size_t scoreMisses = 0; ///< probes that missed (caller computes)
    std::size_t evictions = 0;   ///< LRU entries dropped at the capacity bound
  };

  explicit CandidateCache(std::size_t capacity = 0) : lru_(capacity) {}

  /// The memoized score for `key`, touching its LRU slot. Counts a hit or
  /// a miss; on a miss the caller computes the score and insert()s it.
  [[nodiscard]] std::optional<double> lookup(const std::string& key) {
    return lru_.lookup(key);
  }

  /// Memoizes `value` under `key` (touching the slot if already present)
  /// and returns how many entries the capacity bound evicted (0 or 1).
  /// Counts nothing — misses are counted by the failed lookup, so bulk
  /// restores (readCandidateCache) do not skew the hit/miss ratio.
  std::size_t insert(const std::string& key, double value) {
    return lru_.insert(key, value);
  }

  /// Memoized entries, least recently used first (the save/load order).
  [[nodiscard]] std::vector<std::pair<std::string, double>> snapshot() const {
    return lru_.snapshot();
  }

  [[nodiscard]] std::size_t size() const { return lru_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return lru_.capacity();
  }
  [[nodiscard]] Stats stats() const {
    const auto s = lru_.stats();
    return Stats{s.hits, s.misses, s.evictions};
  }

 private:
  LruCache<double> lru_;
};

}  // namespace fsw
