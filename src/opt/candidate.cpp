#include "src/opt/candidate.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/opt/chain.hpp"
#include "src/opt/forest_search.hpp"

namespace fsw {

bool CandidateSource::applicable(const CandidateContext&) const {
  return true;
}

namespace {

/// Prop 8 / Prop 16 linear chains; only defined without precedences.
class ChainGreedySource final : public CandidateSource {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "chain-greedy";
  }
  [[nodiscard]] bool applicable(const CandidateContext& ctx) const override {
    return !ctx.app.hasPrecedences() && ctx.app.size() > 0;
  }
  [[nodiscard]] std::vector<ExecutionGraph> generate(
      const CandidateContext& ctx) const override {
    const auto order = ctx.objective == Objective::Period
                           ? chainOrderPeriod(ctx.app, ctx.model)
                           : chainOrderLatency(ctx.app);
    std::vector<ExecutionGraph> out;
    out.push_back(ExecutionGraph::chain(order));
    return out;
  }
};

/// The classical no-communication optimum of Srivastava et al. [1].
class NoCommBaselineSource final : public CandidateSource {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "no-comm-baseline";
  }
  [[nodiscard]] bool applicable(const CandidateContext& ctx) const override {
    return !ctx.app.hasPrecedences() && ctx.app.size() > 0;
  }
  [[nodiscard]] std::vector<ExecutionGraph> generate(
      const CandidateContext& ctx) const override {
    std::vector<ExecutionGraph> out;
    out.push_back(noCommBaselineGraph(ctx.app));
    return out;
  }
};

class GreedyForestSource final : public CandidateSource {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "greedy-forest";
  }
  [[nodiscard]] std::vector<ExecutionGraph> generate(
      const CandidateContext& ctx) const override {
    std::vector<ExecutionGraph> out;
    out.push_back(greedyForest(ctx.app, ctx.model, ctx.objective));
    return out;
  }
};

class HillClimbSource final : public CandidateSource {
 public:
  [[nodiscard]] std::string_view name() const override { return "hill-climb"; }
  [[nodiscard]] std::vector<ExecutionGraph> generate(
      const CandidateContext& ctx) const override {
    std::vector<ExecutionGraph> out;
    out.push_back(hillClimbForest(ctx.app, ctx.model, ctx.objective,
                                  greedyForest(ctx.app, ctx.model,
                                               ctx.objective)));
    return out;
  }
};

class AnnealSource final : public CandidateSource {
 public:
  [[nodiscard]] std::string_view name() const override { return "anneal"; }
  [[nodiscard]] std::vector<ExecutionGraph> generate(
      const CandidateContext& ctx) const override {
    std::vector<ExecutionGraph> out;
    out.push_back(
        annealForest(ctx.app, ctx.model, ctx.objective, ctx.heuristics));
    return out;
  }
};

/// Exhaustive forest enumeration (exact for MinPeriod, Prop 4).
class ExactForestSource final : public CandidateSource {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "exact-forest";
  }
  [[nodiscard]] bool applicable(const CandidateContext& ctx) const override {
    return ctx.app.size() > 0 && ctx.app.size() <= ctx.exactForestMaxN;
  }
  [[nodiscard]] std::vector<ExecutionGraph> generate(
      const CandidateContext& ctx) const override {
    std::vector<ExecutionGraph> out;
    if (ctx.objective == Objective::Period) {
      out.push_back(exactForestMinPeriod(ctx.app, ctx.model,
                                         /*orchestrated=*/false,
                                         /*maxN=*/ctx.exactForestMaxN)
                        .graph);
    } else {
      out.push_back(
          exactForestMinLatency(ctx.app, /*maxN=*/ctx.exactForestMaxN).graph);
    }
    return out;
  }
};

}  // namespace

namespace {

/// Portfolio and source names end up as tokens of the plain-text cache
/// formats and as fields of the portfolio fingerprint, so they must be
/// non-empty, whitespace-free and free of the fingerprint delimiters —
/// otherwise a source named "a,b" would fingerprint identically to two
/// sources "a" and "b" and the portfolios could share cache keys.
void validateToken(std::string_view name, const char* what) {
  if (name.empty()) {
    throw std::invalid_argument(std::string("CandidateRegistry: empty ") +
                                what + " name");
  }
  if (name.find_first_of(" \t\n\r\f\v[],") != std::string_view::npos) {
    throw std::invalid_argument(
        std::string("CandidateRegistry: ") + what + " name '" +
        std::string(name) +
        "' contains whitespace or a fingerprint delimiter ('[', ']', ',')");
  }
}

}  // namespace

CandidateRegistry::CandidateRegistry(std::string name) {
  setName(std::move(name));
}

void CandidateRegistry::setName(std::string name) {
  validateToken(name, "portfolio");
  name_ = std::move(name);
}

void CandidateRegistry::add(std::unique_ptr<CandidateSource> source) {
  if (source == nullptr) {
    throw std::invalid_argument("CandidateRegistry: null source");
  }
  validateToken(source->name(), "source");
  if (find(source->name()) != nullptr) {
    throw std::invalid_argument("CandidateRegistry: duplicate source name '" +
                                std::string(source->name()) + "'");
  }
  sources_.push_back(std::move(source));
}

const CandidateSource* CandidateRegistry::find(std::string_view name) const {
  const auto it =
      std::find_if(sources_.begin(), sources_.end(),
                   [&](const auto& s) { return s->name() == name; });
  return it == sources_.end() ? nullptr : it->get();
}

CandidateRegistry CandidateRegistry::makeBuiltin() {
  CandidateRegistry r("builtin");
  r.add(std::make_unique<ChainGreedySource>());
  r.add(std::make_unique<NoCommBaselineSource>());
  r.add(std::make_unique<GreedyForestSource>());
  r.add(std::make_unique<HillClimbSource>());
  r.add(std::make_unique<AnnealSource>());
  r.add(std::make_unique<ExactForestSource>());
  return r;
}

const CandidateRegistry& CandidateRegistry::builtin() {
  static const CandidateRegistry registry = makeBuiltin();
  return registry;
}

std::string portfolioFingerprint(const CandidateRegistry& registry) {
  std::string fp = registry.name();
  fp += '[';
  for (std::size_t i = 0; i < registry.sources().size(); ++i) {
    if (i != 0) fp += ',';
    fp += registry.sources()[i]->name();
  }
  fp += ']';
  return fp;
}

std::string graphSignature(const ExecutionGraph& g) {
  std::vector<Edge> edges = g.edges();
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.from != b.from ? a.from < b.from : a.to < b.to;
  });
  std::string sig(1, 'n');
  sig += std::to_string(g.size());
  for (const Edge& e : edges) {
    sig += '|';
    sig += std::to_string(e.from);
    sig += '>';
    sig += std::to_string(e.to);
  }
  return sig;
}

std::string applicationSignature(const Application& app) {
  std::ostringstream os;
  os << std::setprecision(17) << 'a' << app.size();
  for (NodeId i = 0; i < app.size(); ++i) {
    const Service& s = app.service(i);
    os << ';' << s.cost << ':' << s.selectivity;
  }
  std::vector<Precedence> precs = app.precedences();
  std::sort(precs.begin(), precs.end(),
            [](const Precedence& a, const Precedence& b) {
              return a.from != b.from ? a.from < b.from : a.to < b.to;
            });
  for (const Precedence& p : precs) {
    os << ";p" << p.from << '>' << p.to;
  }
  return os.str();
}

}  // namespace fsw
