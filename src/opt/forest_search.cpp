#include "src/opt/forest_search.hpp"

#include <stdexcept>

#include "src/core/cost_model.hpp"
#include "src/core/service.hpp"
#include "src/sched/latency.hpp"
#include "src/sched/orchestrator.hpp"

namespace fsw {
namespace {

/// True iff the parent function is acyclic (every chain reaches a root).
bool acyclic(const std::vector<NodeId>& parent) {
  const std::size_t n = parent.size();
  std::vector<int> state(n, 0);  // 0 unvisited, 1 on path, 2 done
  for (NodeId i = 0; i < n; ++i) {
    NodeId v = i;
    std::vector<NodeId> path;
    while (v != kNoNode && state[v] == 0) {
      state[v] = 1;
      path.push_back(v);
      v = parent[v];
    }
    if (v != kNoNode && state[v] == 1) return false;  // hit the open path
    for (const NodeId u : path) state[u] = 2;
  }
  return true;
}

}  // namespace

ForestSearchResult exactForestSearch(
    const Application& app,
    const std::function<double(const ExecutionGraph&)>& objective,
    std::size_t maxN) {
  const std::size_t n = app.size();
  if (n > maxN) {
    throw std::invalid_argument("exactForestSearch: instance too large");
  }
  ForestSearchResult best;
  std::vector<NodeId> parent(n, kNoNode);

  // Odometer over parent choices; each node has n choices: digits 0..n-2
  // name the n-1 other services (self skipped), digit n-1 means "root".
  std::vector<std::size_t> digit(n, 0);
  const auto toParent = [&](NodeId i, std::size_t d) -> NodeId {
    if (d == n - 1) return kNoNode;
    const NodeId p = static_cast<NodeId>(d);
    return p >= i ? p + 1 : p;
  };
  const auto digitLimit = [&](NodeId i) -> std::size_t {
    (void)i;
    return n - 1;
  };

  bool carry = false;
  while (!carry) {
    for (NodeId i = 0; i < n; ++i) parent[i] = toParent(i, digit[i]);
    if (acyclic(parent)) {
      ExecutionGraph g = ExecutionGraph::fromParents(parent);
      if (g.respects(app)) {
        ++best.explored;
        const double v = objective(g);
        if (v < best.value) {
          best.value = v;
          best.graph = std::move(g);
        }
      }
    }
    // Increment odometer.
    carry = true;
    for (NodeId i = 0; i < n && carry; ++i) {
      if (digit[i] < digitLimit(i)) {
        ++digit[i];
        carry = false;
      } else {
        digit[i] = 0;
      }
    }
  }
  return best;
}

ForestSearchResult exactForestMinPeriod(const Application& app, CommModel m,
                                        bool orchestrated, std::size_t maxN) {
  if (!orchestrated) {
    return exactForestSearch(
        app,
        [&](const ExecutionGraph& g) {
          return CostModel(app, g).periodLowerBound(m);
        },
        maxN);
  }
  return exactForestSearch(
      app,
      [&](const ExecutionGraph& g) {
        return orchestrate(app, g, m, Objective::Period).result.value;
      },
      maxN);
}

ForestSearchResult exactForestMinLatency(const Application& app,
                                         std::size_t maxN) {
  return exactForestSearch(
      app, [&](const ExecutionGraph& g) { return treeLatencyValue(app, g); },
      maxN);
}

}  // namespace fsw
