#include "src/workload/trace.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "src/io/binio.hpp"
#include "src/io/serialize.hpp"

namespace fsw {

const char* name(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::Arrival:
      return "arrival";
    case TraceEventKind::ParamDrift:
      return "drift";
    case TraceEventKind::OperatorAdd:
      return "add";
    case TraceEventKind::OperatorRemove:
      return "remove";
    case TraceEventKind::HostKill:
      return "kill";
    case TraceEventKind::HostRevive:
      return "revive";
  }
  return "?";
}

bool isSolveEvent(TraceEventKind kind) noexcept {
  return kind != TraceEventKind::HostKill && kind != TraceEventKind::HostRevive;
}

namespace {

/// Drift results stay inside this band no matter how long the trace runs;
/// without it a hot stream drifting 0.9x per event reaches denormals.
constexpr double kParamLo = 1e-3;
constexpr double kParamHi = 1e3;

[[noreturn]] void badEvent(const TraceEvent& event, const std::string& what) {
  throw std::runtime_error(std::string("trace event '") + name(event.kind) +
                           "' at " + std::to_string(event.atUs) + "us: " +
                           what);
}

/// Rebuilds `state.app` from a mutated service list, carrying over the
/// surviving precedences through `remap` (kNoNode = dropped endpoint).
void rebuild(StreamState& state, std::vector<Service> services,
             const std::vector<NodeId>& remap,
             const std::vector<Precedence>& extra) {
  Application next(std::move(services));
  for (const auto& p : state.app.precedences()) {
    const NodeId from = p.from < remap.size() ? remap[p.from] : kNoNode;
    const NodeId to = p.to < remap.size() ? remap[p.to] : kNoNode;
    if (from != kNoNode && to != kNoNode) next.addPrecedence(from, to);
  }
  for (const auto& p : extra) next.addPrecedence(p.from, p.to);
  state.app = std::move(next);
}

std::vector<NodeId> identityRemap(std::size_t n) {
  std::vector<NodeId> remap(n);
  for (std::size_t i = 0; i < n; ++i) remap[i] = i;
  return remap;
}

}  // namespace

void applyTraceEvent(StreamState& state, const TraceEvent& event) {
  switch (event.kind) {
    case TraceEventKind::HostKill:
    case TraceEventKind::HostRevive:
      badEvent(event, "host event applied to a stream");
    case TraceEventKind::Arrival:
      if (event.app.size() == 0) badEvent(event, "empty application");
      state.app = event.app;
      state.model = event.model;
      state.objective = event.objective;
      state.live = true;
      return;
    default:
      break;
  }
  if (!state.live) badEvent(event, "mutation of a stream with no arrival");
  const std::size_t n = state.app.size();
  switch (event.kind) {
    case TraceEventKind::ParamDrift: {
      if (event.service != kNoNode && event.service >= n) {
        badEvent(event, "drift target out of range");
      }
      std::vector<Service> services = state.app.services();
      const auto scale = [&](Service& s) {
        s.cost = std::clamp(s.cost * event.costScale, kParamLo, kParamHi);
        s.selectivity =
            std::clamp(s.selectivity * event.selScale, kParamLo, kParamHi);
      };
      if (event.service == kNoNode) {
        for (auto& s : services) scale(s);
      } else {
        scale(services[event.service]);
      }
      rebuild(state, std::move(services), identityRemap(n), {});
      return;
    }
    case TraceEventKind::OperatorAdd: {
      if (event.predecessor != kNoNode && event.predecessor >= n) {
        badEvent(event, "add predecessor out of range");
      }
      std::vector<Service> services = state.app.services();
      services.push_back(Service{event.cost, event.selectivity,
                                 "C" + std::to_string(n + 1)});
      std::vector<Precedence> extra;
      if (event.predecessor != kNoNode) {
        extra.push_back(Precedence{event.predecessor, n});
      }
      rebuild(state, std::move(services), identityRemap(n), extra);
      return;
    }
    case TraceEventKind::OperatorRemove: {
      if (event.service >= n) badEvent(event, "remove target out of range");
      if (n <= 1) badEvent(event, "removing the last service");
      std::vector<Service> services;
      services.reserve(n - 1);
      std::vector<NodeId> remap(n, kNoNode);
      for (NodeId i = 0; i < n; ++i) {
        if (i == event.service) continue;
        remap[i] = services.size();
        services.push_back(state.app.service(i));
      }
      rebuild(state, std::move(services), remap, {});
      return;
    }
    default:
      badEvent(event, "unknown event kind");
  }
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

namespace {

/// Bounded-Pareto inter-event gap with mean ~meanGapUs: inverse-CDF sample
/// of a Pareto(alpha) tail, capped at 50x the mean so one draw cannot park
/// the whole trace, with the scale chosen so the truncated mean lands near
/// the requested one.
std::uint64_t heavyGapUs(const TraceSpec& spec, Prng& rng) {
  if (spec.meanGapUs <= 0) return 0;
  const double alpha = std::max(1.05, spec.gapAlpha);
  // E[Pareto(xm, alpha)] = xm * alpha / (alpha - 1); invert for xm.
  const double xm = spec.meanGapUs * (alpha - 1.0) / alpha;
  const double u = std::max(rng.uniform(), 1e-12);
  const double gap =
      std::min(xm / std::pow(u, 1.0 / alpha), 50.0 * spec.meanGapUs);
  return static_cast<std::uint64_t>(gap);
}

/// Zipf-like hot-stream pick: weight 1/(i+1)^skew via inverse-CDF over the
/// (small) stream count. skew = 0 degenerates to uniform.
std::uint32_t pickStream(const TraceSpec& spec, Prng& rng) {
  const std::size_t k = std::max<std::size_t>(1, spec.streams);
  if (spec.skew <= 0) {
    return static_cast<std::uint32_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(k) - 1));
  }
  double total = 0;
  for (std::size_t i = 0; i < k; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), spec.skew);
  }
  double target = rng.uniform() * total;
  for (std::size_t i = 0; i < k; ++i) {
    target -= 1.0 / std::pow(static_cast<double>(i + 1), spec.skew);
    if (target <= 0) return static_cast<std::uint32_t>(i);
  }
  return static_cast<std::uint32_t>(k - 1);
}

TraceEvent makeArrival(const TraceSpec& spec, std::uint32_t stream,
                       Prng& rng) {
  TraceEvent e;
  e.kind = TraceEventKind::Arrival;
  e.stream = stream;
  WorkloadSpec ws = spec.workload;
  ws.n = std::max<std::size_t>(2, ws.n);
  e.app = randomApplication(ws, rng);
  e.model = kAllModels[static_cast<std::size_t>(rng.uniformInt(0, 2))];
  e.objective =
      rng.bernoulli(0.5) ? Objective::Period : Objective::Latency;
  return e;
}

}  // namespace

Trace generateTrace(const TraceSpec& spec, std::uint64_t seed) {
  Prng rng(seed);
  Trace trace;
  trace.events.reserve(spec.events);
  const std::size_t streams = std::max<std::size_t>(1, spec.streams);

  // Host kill/revive schedule: pairs spread across the middle of the
  // trace, each kill revived one fifth of the trace later, never more
  // kills outstanding than hosts - 1 (we stagger the pairs, so at most
  // one host is down at a time — the router must always have a live
  // target).
  struct HostEvent {
    std::size_t at;
    TraceEventKind kind;
    std::uint32_t host;
  };
  std::vector<HostEvent> hostEvents;
  const std::size_t kills =
      spec.hosts > 1 ? std::min(spec.hostKills, 3ul) : 0;
  for (std::size_t k = 0; k < kills; ++k) {
    const std::size_t killAt =
        spec.events * (2 + 2 * k) / (2 * kills + 4);
    const std::size_t reviveAt = killAt + spec.events / 5;
    if (reviveAt + 2 >= spec.events) break;
    const auto host = static_cast<std::uint32_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(spec.hosts) - 1));
    hostEvents.push_back({killAt, TraceEventKind::HostKill, host});
    hostEvents.push_back({reviveAt, TraceEventKind::HostRevive, host});
  }
  std::sort(hostEvents.begin(), hostEvents.end(),
            [](const HostEvent& a, const HostEvent& b) { return a.at < b.at; });

  // Evolving per-stream state mirrors what a replay would compute, so the
  // generator only ever emits *legal* mutations (valid targets, no
  // removal below 2 services, growth capped).
  std::vector<StreamState> states(streams);
  const std::size_t sizeCap =
      std::max<std::size_t>(2, spec.workload.n) + spec.growthCap;
  const double mixTotal = spec.driftWeight + spec.addWeight +
                          spec.removeWeight + spec.rearrivalWeight;

  std::uint64_t now = 0;
  std::size_t nextHost = 0;
  std::size_t coldStream = 0;  // streams arrived so far; mutations wait
  for (std::size_t i = 0; i < spec.events; ++i) {
    if (i > 0 && !rng.bernoulli(spec.burstProb)) now += heavyGapUs(spec, rng);

    if (nextHost < hostEvents.size() && hostEvents[nextHost].at <= i) {
      TraceEvent e;
      e.atUs = now;
      e.kind = hostEvents[nextHost].kind;
      e.host = hostEvents[nextHost].host;
      trace.events.push_back(std::move(e));
      ++nextHost;
      continue;
    }

    TraceEvent e;
    e.atUs = now;
    if (coldStream < streams) {
      // Cold start: every stream arrives before anything mutates.
      e = makeArrival(spec, static_cast<std::uint32_t>(coldStream++), rng);
      e.atUs = now;
    } else {
      const std::uint32_t stream = pickStream(spec, rng);
      StreamState& st = states[stream];
      const std::size_t n = st.app.size();
      double pick = mixTotal > 0 ? rng.uniform() * mixTotal : 0.0;
      pick -= spec.driftWeight;
      if (pick < 0) {
        e.kind = TraceEventKind::ParamDrift;
        e.stream = stream;
        // Mostly single-service nudges (the near-key sweet spot), with
        // an occasional all-service shift.
        e.service = rng.bernoulli(0.8)
                        ? static_cast<NodeId>(rng.uniformInt(
                              0, static_cast<std::int64_t>(n) - 1))
                        : kNoNode;
        e.costScale = rng.uniform(0.8, 1.25);
        e.selScale = rng.bernoulli(0.5) ? rng.uniform(0.9, 1.1) : 1.0;
      } else if ((pick -= spec.addWeight) < 0 && n < sizeCap) {
        e.kind = TraceEventKind::OperatorAdd;
        e.stream = stream;
        e.cost = rng.uniform(spec.workload.costLo, spec.workload.costHi);
        e.selectivity = rng.bernoulli(spec.workload.filterFraction)
                            ? rng.uniform(spec.workload.filterSigmaLo,
                                          spec.workload.filterSigmaHi)
                            : rng.uniform(spec.workload.expandSigmaLo,
                                          spec.workload.expandSigmaHi);
        e.predecessor = rng.bernoulli(0.3)
                            ? static_cast<NodeId>(rng.uniformInt(
                                  0, static_cast<std::int64_t>(n) - 1))
                            : kNoNode;
      } else if (pick < 0 || ((pick -= spec.removeWeight) < 0 && n > 2)) {
        // An add drawn past the growth cap lands here too: the stream
        // sheds a service instead of growing without bound.
        if (n > 2) {
          e.kind = TraceEventKind::OperatorRemove;
          e.stream = stream;
          e.service = static_cast<NodeId>(
              rng.uniformInt(0, static_cast<std::int64_t>(n) - 1));
        } else {
          e = makeArrival(spec, stream, rng);
          e.atUs = now;
        }
      } else {
        e = makeArrival(spec, stream, rng);
        e.atUs = now;
      }
    }
    applyTraceEvent(states[e.stream], e);
    trace.events.push_back(std::move(e));
  }
  return trace;
}

// ---------------------------------------------------------------------------
// Codec (block kind 'T', version 1)
// ---------------------------------------------------------------------------

namespace {

/// NodeId with a reserved "none" value: kNoNode <-> 0, id <-> id + 1.
void putOptNode(binio::Writer& w, NodeId id) {
  w.u64(id == kNoNode ? 0 : static_cast<std::uint64_t>(id) + 1);
}

NodeId getOptNode(binio::Reader& r) {
  const std::uint64_t v = r.u64();
  return v == 0 ? kNoNode : static_cast<NodeId>(v - 1);
}

std::uint32_t getU32(binio::Reader& r, const char* what) {
  const std::uint64_t v = r.u64();
  if (v > std::numeric_limits<std::uint32_t>::max()) {
    r.fail(std::string(what) + " out of range");
  }
  return static_cast<std::uint32_t>(v);
}

std::string encodeBody(const Trace& trace) {
  binio::Writer w;
  w.u64(trace.events.size());
  std::uint64_t prev = 0;
  for (const auto& e : trace.events) {
    if (e.atUs < prev) {
      throw std::runtime_error(
          "encodeTrace: timestamps must be nondecreasing");
    }
    w.u64(e.atUs - prev);
    prev = e.atUs;
    w.u8(static_cast<std::uint8_t>(e.kind));
    switch (e.kind) {
      case TraceEventKind::Arrival:
        w.u64(e.stream);
        w.str(name(e.model));
        w.str(name(e.objective));
        putApplication(w, e.app);
        break;
      case TraceEventKind::ParamDrift:
        w.u64(e.stream);
        putOptNode(w, e.service);
        w.f64(e.costScale);
        w.f64(e.selScale);
        break;
      case TraceEventKind::OperatorAdd:
        w.u64(e.stream);
        w.f64(e.cost);
        w.f64(e.selectivity);
        putOptNode(w, e.predecessor);
        break;
      case TraceEventKind::OperatorRemove:
        w.u64(e.stream);
        putOptNode(w, e.service);
        break;
      case TraceEventKind::HostKill:
      case TraceEventKind::HostRevive:
        w.u64(e.host);
        break;
      default:
        throw std::runtime_error("encodeTrace: unknown event kind");
    }
  }
  return w.take();
}

Trace decodeBody(binio::Reader& r) {
  const std::uint64_t count = r.u64();
  // Every event costs at least 3 body bytes (gap, kind, target), so a
  // hostile count beyond remaining/3 fails before the reserve.
  if (count > r.remaining() / 3 + 1) {
    r.fail("trace declares more events than bytes present");
  }
  Trace trace;
  trace.events.reserve(count);
  std::uint64_t now = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceEvent e;
    now += r.u64();
    e.atUs = now;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(TraceEventKind::HostRevive)) {
      r.fail("unknown trace event kind " + std::to_string(kind));
    }
    e.kind = static_cast<TraceEventKind>(kind);
    switch (e.kind) {
      case TraceEventKind::Arrival: {
        e.stream = getU32(r, "stream");
        const auto model = commModelFromName(r.str());
        if (!model) r.fail("unknown comm model name");
        e.model = *model;
        const auto objective = objectiveFromName(r.str());
        if (!objective) r.fail("unknown objective name");
        e.objective = *objective;
        e.app = getApplication(r);
        break;
      }
      case TraceEventKind::ParamDrift:
        e.stream = getU32(r, "stream");
        e.service = getOptNode(r);
        e.costScale = r.f64();
        e.selScale = r.f64();
        break;
      case TraceEventKind::OperatorAdd:
        e.stream = getU32(r, "stream");
        e.cost = r.f64();
        e.selectivity = r.f64();
        e.predecessor = getOptNode(r);
        break;
      case TraceEventKind::OperatorRemove:
        e.stream = getU32(r, "stream");
        e.service = getOptNode(r);
        break;
      case TraceEventKind::HostKill:
      case TraceEventKind::HostRevive:
        e.host = getU32(r, "host");
        break;
    }
    trace.events.push_back(std::move(e));
  }
  return trace;
}

}  // namespace

std::string encodeTrace(const Trace& trace) {
  return binio::finishBlock(kBinTraceKind, kBinTraceVersion,
                            encodeBody(trace));
}

Trace decodeTrace(std::string_view payload) {
  binio::Reader r = binio::openBlock(payload, kBinTraceKind, kBinTraceVersion,
                                     "trace");
  Trace trace = decodeBody(r);
  r.expectEnd();
  return trace;
}

void writeTrace(std::ostream& os, const Trace& trace) {
  const std::string blob = encodeTrace(trace);
  os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
}

Trace readTrace(std::istream& is) {
  const binio::Block block = binio::readBlock(is, "trace");
  if (block.kind != kBinTraceKind) {
    throw std::runtime_error(std::string("trace: unexpected block kind '") +
                             block.kind + "'");
  }
  if (block.version != kBinTraceVersion) {
    throw std::runtime_error("trace: unsupported version " +
                             std::to_string(block.version));
  }
  binio::Reader r(block.body, "trace");
  Trace trace = decodeBody(r);
  r.expectEnd();
  return trace;
}

}  // namespace fsw
