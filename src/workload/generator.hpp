// Synthetic workload generation for benches and property tests: random
// applications with controlled cost/selectivity mixes, and random execution
// graph shapes (forest, layered DAG, chain, fork-join).
#pragma once

#include <cstdint>

#include "src/common/prng.hpp"
#include "src/core/application.hpp"
#include "src/core/execution_graph.hpp"

namespace fsw {

struct WorkloadSpec {
  std::size_t n = 8;
  double costLo = 0.5;
  double costHi = 4.0;
  /// Probability a service is a filter (sigma < 1); the rest are expanders.
  double filterFraction = 0.7;
  double filterSigmaLo = 0.1;
  double filterSigmaHi = 0.95;
  double expandSigmaLo = 1.05;
  double expandSigmaHi = 2.0;
  /// Probability of each forward precedence edge (0 = unconstrained).
  double precedenceDensity = 0.0;
};

/// A random application matching the spec.
[[nodiscard]] Application randomApplication(const WorkloadSpec& spec,
                                            Prng& rng);

/// A uniformly random forest over app's services that respects its
/// precedence constraints (rejection sampling).
[[nodiscard]] ExecutionGraph randomForest(const Application& app, Prng& rng);

/// A random layered DAG: services split into `layers` ranks, every non-entry
/// node receiving 1..maxFanin predecessors from the previous rank.
[[nodiscard]] ExecutionGraph randomLayeredDag(const Application& app,
                                              std::size_t layers,
                                              std::size_t maxFanin, Prng& rng);

/// A fork-join: node 0 feeds nodes 1..n-2, all feeding node n-1 (n >= 3).
[[nodiscard]] ExecutionGraph forkJoinGraph(std::size_t n);

}  // namespace fsw
