// Dynamic workload traces: the paper's setting is a streaming system whose
// applications *evolve*, but until PR 10 every request the serving stack saw
// was a one-shot static application. A Trace is the missing workload form —
// a timestamped event stream over logical application *streams*:
//
//   Arrival        — a new application arrives on a stream (replacing
//                    whatever the stream ran before);
//   ParamDrift     — costs/selectivities drift (one service or all), the
//                    near-key warm-start shape: the successor request shares
//                    its structural prefix with the previous one, so a
//                    BoundBoard / result-store near consult can seed the
//                    re-solve with a certified incumbent (PR 9);
//   OperatorAdd    — a service is appended (optionally wired under a
//                    precedence), changing the structure: a cold re-solve;
//   OperatorRemove — a service is removed (precedences re-indexed);
//   HostKill /     — fleet membership churn: a serving host dies or
//   HostRevive       returns, exercising PlanRouter failover/re-admission.
//
// Traces are values: generateTrace derives one deterministically from a
// seed (bursty heavy-tailed arrival gaps, hot-stream skew for mutations,
// kill/revive pairs spread mid-trace), and the binio codec
// (writeTrace/readTrace, block kind 'T') records and replays them
// byte-exactly — decode(encode(t)) re-encodes to the identical bytes, the
// same contract as every other binary artifact in src/io/serialize.hpp.
//
// Replaying a trace against a live fleet is src/sim/scenario_driver.hpp's
// job; deriving each event's successor application is applyTraceEvent here,
// so the driver, tests and tooling share one mutation semantics.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/application.hpp"
#include "src/core/model.hpp"
#include "src/workload/generator.hpp"

namespace fsw {

enum class TraceEventKind : std::uint8_t {
  Arrival = 0,
  ParamDrift = 1,
  OperatorAdd = 2,
  OperatorRemove = 3,
  HostKill = 4,
  HostRevive = 5,
};

[[nodiscard]] const char* name(TraceEventKind kind) noexcept;

/// One timestamped event. Only the fields its kind names are meaningful;
/// the codec encodes exactly those, so unused fields never cost wire bytes.
struct TraceEvent {
  /// Microseconds since trace start; nondecreasing across the trace (the
  /// codec stores gaps as varints, so this is structural, not a contract
  /// the reader must re-check).
  std::uint64_t atUs = 0;
  TraceEventKind kind = TraceEventKind::Arrival;
  /// The logical application stream the event addresses (solve events
  /// only; host events carry `host` instead).
  std::uint32_t stream = 0;

  // Arrival:
  Application app;
  CommModel model = CommModel::Overlap;
  Objective objective = Objective::Period;

  // ParamDrift: multiplicative scales, applied to `service` (kNoNode =
  // every service). Results are clamped to sane ranges (see
  // applyTraceEvent) so a long trace cannot drift into degenerate numerics.
  NodeId service = kNoNode;  ///< also OperatorRemove's target
  double costScale = 1.0;
  double selScale = 1.0;

  // OperatorAdd: the new service, optionally preceded by `predecessor`
  // (kNoNode = unconstrained).
  double cost = 1.0;
  double selectivity = 1.0;
  NodeId predecessor = kNoNode;

  // HostKill / HostRevive: the fleet slot.
  std::uint32_t host = 0;
};

struct Trace {
  std::vector<TraceEvent> events;
};

/// True for the kinds that derive a successor application and trigger a
/// re-solve (everything except the host-membership events).
[[nodiscard]] bool isSolveEvent(TraceEventKind kind) noexcept;

/// The evolving state of one application stream between events.
struct StreamState {
  Application app;
  CommModel model = CommModel::Overlap;
  Objective objective = Objective::Period;
  bool live = false;  ///< an Arrival has been seen for this stream
};

/// Derives the successor state for a solve event: Arrival replaces the
/// stream wholesale; ParamDrift scales costs/selectivities in place
/// (clamped to [1e-3, 1e3] to keep long traces numerically sane);
/// OperatorAdd appends a service (and its optional precedence);
/// OperatorRemove drops a service and re-indexes the surviving
/// precedences. Throws std::runtime_error on an inconsistent event — a
/// mutation of a stream with no prior Arrival, an out-of-range
/// service/predecessor, removing the last service — so a corrupted or
/// hand-edited trace fails loudly instead of replaying garbage.
void applyTraceEvent(StreamState& state, const TraceEvent& event);

/// Generator knobs. Everything is derived from the seed passed to
/// generateTrace — two calls with equal (spec, seed) produce
/// byte-identical traces.
struct TraceSpec {
  std::size_t events = 500;   ///< total events (arrivals + mutations + host)
  std::size_t streams = 6;    ///< logical application streams
  std::size_t hosts = 2;      ///< fleet size addressed by kill/revive
  /// Kill/revive pairs injected mid-trace (each kill is revived after
  /// ~1/5 of the trace; 0 = static fleet). Capped so every kill leaves at
  /// least one host up.
  std::size_t hostKills = 1;
  /// Arrival process: heavy-tailed (bounded Pareto, shape `gapAlpha`)
  /// inter-event gaps with mean ~meanGapUs, plus bursts — with probability
  /// `burstProb` an event lands back-to-back with its predecessor (gap 0).
  double meanGapUs = 1000.0;
  double gapAlpha = 1.3;
  double burstProb = 0.25;
  /// Hot-stream skew: mutation targets are drawn Zipf-like with this
  /// exponent (0 = uniform; 1+ concentrates traffic on low streams —
  /// the hot-key case the warm-start machinery exists for).
  double skew = 1.1;
  /// Mutation mix among the non-arrival solve events (normalized).
  double driftWeight = 0.70;
  double addWeight = 0.12;
  double removeWeight = 0.08;
  double rearrivalWeight = 0.10;
  /// Shape of arriving applications (size is clamped to >= 2 so
  /// OperatorRemove always stays legal).
  WorkloadSpec workload{.n = 5};
  /// Services per application never exceed workload.n + growthCap under
  /// OperatorAdd (an add drawn beyond the cap becomes a drift instead).
  std::size_t growthCap = 3;
};

/// A deterministic trace matching the spec: the first `streams` events are
/// Arrivals (every stream exists before it mutates), host kill/revive
/// pairs are spread across the middle of the trace, and every other event
/// is drawn from the mutation mix with hot-stream skew. Timestamps are
/// nondecreasing by construction.
[[nodiscard]] Trace generateTrace(const TraceSpec& spec, std::uint64_t seed);

/// Binio-dialect codec (block kind 'T', version 1): delta-coded varint
/// timestamps, per-kind bodies, applications via the shared binary
/// application body (src/io/serialize.hpp). Byte-exact:
/// encodeTrace(decodeTrace(b)) == b. readTrace/decodeTrace throw
/// std::runtime_error on a bad magic/kind/version, truncation at any cut,
/// counts beyond the bytes present, unknown event kinds, or trailing
/// bytes — hostile inputs fail before they allocate (binio discipline).
void writeTrace(std::ostream& os, const Trace& trace);
[[nodiscard]] Trace readTrace(std::istream& is);
[[nodiscard]] std::string encodeTrace(const Trace& trace);
[[nodiscard]] Trace decodeTrace(std::string_view payload);

}  // namespace fsw
