// The paper's named instances, reconstructed exactly: the Section 2.3
// worked example (Fig 1) and the three counter-examples of Appendix B
// (Figs 4, 5, 6). These are the concrete artifacts every table/figure
// experiment of EXPERIMENTS.md replays.
#pragma once

#include "src/core/application.hpp"
#include "src/core/execution_graph.hpp"

namespace fsw {

struct PaperInstance {
  Application app;
  ExecutionGraph graph{0};
};

/// Section 2.3 / Fig 1: five services, cost 4, selectivity 1; the diamond
/// C1 -> {C2 -> C3, C4} -> C5. Known optima: latency 21 (all models),
/// period 4 (OVERLAP), 7 (OUTORDER), 23/3 (INORDER).
[[nodiscard]] PaperInstance sec23Example();

/// Appendix B.1 / Fig 4: 202 services (two cheap filters with sigma =
/// 0.9999, cost 100; 200 expanders with sigma = 100, cost 100/0.9999).
/// `graph` is the comm-aware optimum (two stars, period 100 under OVERLAP).
[[nodiscard]] PaperInstance counterexampleB1();
/// The no-communication optimum for the same application (C1 -> C2 chained,
/// C2 feeding all expanders): period 100 without communications but ~200
/// under OVERLAP.
[[nodiscard]] ExecutionGraph counterexampleB1ChainGraph();

/// Appendix B.2 / Fig 5: 12 unit-cost services; senders with sigma
/// {1,2,2,3,3,3} feeding six receivers so that every receiver's input
/// totals 6. Multi-port latency 20; every one-port schedule exceeds 20.
[[nodiscard]] PaperInstance counterexampleB2();

/// Appendix B.3 / Fig 6: the period analogue: senders C1..C4 with output
/// volumes {3,3,4,2}; C1, C2 feed all four receivers, C3, C4 feed C5..C7.
/// Multi-port period 12; every one-port-overlap schedule exceeds 12.
/// Receiver costs/selectivities are chosen (c = 1/6, sigma = 1/72 resp.
/// c = 1, sigma = 1/9) so the filtering cost model reproduces the proof's
/// Cexec profile exactly (see DESIGN.md, substitution table).
[[nodiscard]] PaperInstance counterexampleB3();

}  // namespace fsw
