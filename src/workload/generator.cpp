#include "src/workload/generator.hpp"

#include <stdexcept>

namespace fsw {

Application randomApplication(const WorkloadSpec& spec, Prng& rng) {
  Application app;
  for (std::size_t i = 0; i < spec.n; ++i) {
    const double cost = rng.uniform(spec.costLo, spec.costHi);
    const double sigma =
        rng.bernoulli(spec.filterFraction)
            ? rng.uniform(spec.filterSigmaLo, spec.filterSigmaHi)
            : rng.uniform(spec.expandSigmaLo, spec.expandSigmaHi);
    app.addService(cost, sigma);
  }
  if (spec.precedenceDensity > 0.0) {
    for (NodeId i = 0; i < spec.n; ++i) {
      for (NodeId j = i + 1; j < spec.n; ++j) {
        if (rng.bernoulli(spec.precedenceDensity)) app.addPrecedence(i, j);
      }
    }
  }
  return app;
}

ExecutionGraph randomForest(const Application& app, Prng& rng) {
  const std::size_t n = app.size();
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::vector<NodeId> parent(n, kNoNode);
    // Random permutation as implicit topological order; each node picks a
    // parent among earlier nodes or none. Constrained instances get a
    // strong bias toward chaining (the shape most likely to contain the
    // precedence closure).
    const auto order = rng.permutation(n);
    const double chainBias = app.hasPrecedences() ? 0.7 : 0.25;
    for (std::size_t pos = 1; pos < n; ++pos) {
      if (rng.bernoulli(0.75)) {
        const auto pick =
            rng.bernoulli(chainBias)
                ? pos - 1
                : static_cast<std::size_t>(
                      rng.uniformInt(0, static_cast<std::int64_t>(pos) - 1));
        parent[order[pos]] = order[pick];
      }
    }
    ExecutionGraph g = ExecutionGraph::fromParents(parent);
    if (g.respects(app)) return g;
  }
  // Guaranteed fallback: a random topological chain always contains the
  // precedence constraints in its transitive closure.
  auto order = app.topologicalOrder();
  // Shuffle within the limits of the precedence order by random adjacent
  // swaps of unconstrained pairs.
  for (std::size_t k = 0; k + 1 < order.size(); ++k) {
    if (rng.bernoulli(0.5) && !app.mustPrecede(order[k], order[k + 1])) {
      std::swap(order[k], order[k + 1]);
    }
  }
  return ExecutionGraph::chain(order);
}

ExecutionGraph randomLayeredDag(const Application& app, std::size_t layers,
                                std::size_t maxFanin, Prng& rng) {
  const std::size_t n = app.size();
  if (layers == 0) throw std::invalid_argument("randomLayeredDag: layers == 0");
  ExecutionGraph g(n);
  std::vector<std::vector<NodeId>> rank(layers);
  for (NodeId i = 0; i < n; ++i) {
    rank[i * layers / n].push_back(i);
  }
  for (std::size_t l = 1; l < layers; ++l) {
    if (rank[l - 1].empty()) continue;
    for (const NodeId v : rank[l]) {
      const auto fanin = static_cast<std::size_t>(rng.uniformInt(
          1, static_cast<std::int64_t>(
                 std::min(maxFanin, rank[l - 1].size()))));
      auto pool = rank[l - 1];
      rng.shuffle(pool);
      for (std::size_t k = 0; k < fanin; ++k) g.addEdge(pool[k], v);
    }
  }
  return g;
}

ExecutionGraph forkJoinGraph(std::size_t n) {
  if (n < 3) throw std::invalid_argument("forkJoinGraph: need n >= 3");
  ExecutionGraph g(n);
  for (NodeId i = 1; i + 1 < n; ++i) {
    g.addEdge(0, i);
    g.addEdge(i, n - 1);
  }
  return g;
}

}  // namespace fsw
