#include "src/workload/paper_instances.hpp"

namespace fsw {

PaperInstance sec23Example() {
  PaperInstance pi;
  for (int i = 0; i < 5; ++i) pi.app.addService(4.0, 1.0);
  ExecutionGraph g(5);
  g.addEdge(0, 1);  // C1 -> C2
  g.addEdge(1, 2);  // C2 -> C3
  g.addEdge(0, 3);  // C1 -> C4
  g.addEdge(2, 4);  // C3 -> C5
  g.addEdge(3, 4);  // C4 -> C5
  pi.graph = std::move(g);
  return pi;
}

PaperInstance counterexampleB1() {
  PaperInstance pi;
  pi.app.addService(100.0, 0.9999, "C1");
  pi.app.addService(100.0, 0.9999, "C2");
  for (int i = 3; i <= 202; ++i) {
    pi.app.addService(100.0 / 0.9999, 100.0, "C" + std::to_string(i));
  }
  // Fig 4: C1 and C2 are independent entries, each feeding 100 expanders.
  ExecutionGraph g(202);
  for (NodeId i = 2; i < 102; ++i) g.addEdge(0, i);
  for (NodeId i = 102; i < 202; ++i) g.addEdge(1, i);
  pi.graph = std::move(g);
  return pi;
}

ExecutionGraph counterexampleB1ChainGraph() {
  ExecutionGraph g(202);
  g.addEdge(0, 1);  // C1 -> C2 (the no-comm optimal chains the filters)
  for (NodeId i = 2; i < 202; ++i) g.addEdge(1, i);
  return g;
}

PaperInstance counterexampleB2() {
  PaperInstance pi;
  // Senders C1..C6 (unit cost; sigma 1,2,2,3,3,3), receivers C7..C12.
  pi.app.addService(1.0, 1.0, "C1");
  pi.app.addService(1.0, 2.0, "C2");
  pi.app.addService(1.0, 2.0, "C3");
  pi.app.addService(1.0, 3.0, "C4");
  pi.app.addService(1.0, 3.0, "C5");
  pi.app.addService(1.0, 3.0, "C6");
  for (int i = 7; i <= 12; ++i) {
    pi.app.addService(1.0, 1.0, "C" + std::to_string(i));
  }
  ExecutionGraph g(12);
  // Every receiver gets inputs of sizes {1, 2, 3}: C1 feeds all six; C2
  // covers C7..C9 and C3 covers C10..C12; C4/C5/C6 cover pairs.
  for (NodeId r = 6; r < 12; ++r) g.addEdge(0, r);
  for (NodeId r = 6; r < 9; ++r) g.addEdge(1, r);
  for (NodeId r = 9; r < 12; ++r) g.addEdge(2, r);
  g.addEdge(3, 6);
  g.addEdge(3, 9);
  g.addEdge(4, 7);
  g.addEdge(4, 10);
  g.addEdge(5, 8);
  g.addEdge(5, 11);
  pi.graph = std::move(g);
  return pi;
}

PaperInstance counterexampleB3() {
  PaperInstance pi;
  // Senders: output volumes sigma = {3, 3, 4, 2}, unit cost.
  pi.app.addService(1.0, 3.0, "C1");
  pi.app.addService(1.0, 3.0, "C2");
  pi.app.addService(1.0, 4.0, "C3");
  pi.app.addService(1.0, 2.0, "C4");
  // Receivers C5..C7: ancestors {C1..C4}, sigma-product 72; cost 1/6 makes
  // Ccomp = 12 and sigma 1/72 makes the output volume 1, matching the
  // proof's Cexec = Cin = 12 profile. C8: ancestors {C1, C2}, product 9.
  for (int i = 5; i <= 7; ++i) {
    pi.app.addService(1.0 / 6.0, 1.0 / 72.0, "C" + std::to_string(i));
  }
  pi.app.addService(1.0, 1.0 / 9.0, "C8");
  ExecutionGraph g(8);
  for (NodeId r = 4; r < 8; ++r) {
    g.addEdge(0, r);  // C1 -> C5..C8
    g.addEdge(1, r);  // C2 -> C5..C8
  }
  for (NodeId r = 4; r < 7; ++r) {
    g.addEdge(2, r);  // C3 -> C5..C7
    g.addEdge(3, r);  // C4 -> C5..C7
  }
  pi.graph = std::move(g);
  return pi;
}

}  // namespace fsw
