// E8 — batched serving: one long-lived PlanEngine vs a naive per-request
// loop on a mixed (app, model, objective) workload with duplicate traffic.
//
// The table times three ways of serving the same >= 32-request workload:
//
//   loop[ms]   — the naive baseline: a fresh engine per request (PR 1's
//                per-call wiring), requests solved one after another;
//   batch[ms]  — PlanEngine::optimizeBatch on one long-lived engine:
//                cross-request dedup, shared score cache, incumbent-bounded
//                orchestration, requests fanned out over the pool;
//   and a winner-identity check against per-request *serial* optimizePlan —
//   the determinism contract across serial / pooled / batched execution.
//
// Exits nonzero when any batch winner diverges from the serial reference,
// so CI gates on it (`--serial` forces the engine fully serial; the
// identity check still runs).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/opt/optimizer.hpp"
#include "src/serve/plan_engine.hpp"
#include "src/workload/generator.hpp"

namespace {

using namespace fsw;

bool g_serial = false;  ///< --serial: force the engine serial

OptimizerOptions servingOptions() {
  OptimizerOptions opt;
  opt.exactForestMaxN = 5;
  opt.heuristics.iterations = 400;
  opt.heuristics.restarts = 2;
  opt.orchestrator.order.exactCap = 120;
  opt.orchestrator.order.localSearchIters = 80;
  opt.orchestrator.outorder.restarts = 6;
  opt.orchestrator.outorder.bisectSteps = 5;
  return opt;
}

/// A mixed serving workload: `apps` distinct applications x three models x
/// two objectives, cycled until `total` requests — so with total >
/// 6 * apps the tail repeats earlier traffic (the serving-cache case).
std::vector<PlanRequest> mixedWorkload(std::size_t apps, std::size_t total) {
  std::vector<PlanRequest> base;
  Prng rng(8100);
  for (std::size_t a = 0; a < apps; ++a) {
    WorkloadSpec spec;
    spec.n = 5 + a % 3;
    spec.precedenceDensity = a % 2 == 0 ? 0.0 : 0.2;
    const auto app = randomApplication(spec, rng);
    for (const CommModel m : kAllModels) {
      for (const Objective obj : {Objective::Period, Objective::Latency}) {
        base.push_back({app, m, obj, servingOptions()});
      }
    }
  }
  std::vector<PlanRequest> reqs;
  reqs.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    reqs.push_back(base[i % base.size()]);
  }
  return reqs;
}

/// E8: batch-vs-loop wall clock plus the winner-identity gate. Returns
/// false when any batch winner diverges from the serial reference.
[[nodiscard]] bool printServingTable() {
  std::printf("E8: batched serving, %s engine (%u hardware threads)\n",
              g_serial ? "serial" : "pooled",
              std::thread::hardware_concurrency());
  std::printf("%-9s %-7s %-10s %-10s %-9s %-9s %-8s %-7s %-9s\n", "requests",
              "unique", "loop[ms]", "batch[ms]", "speedup", "xreqhits",
              "shared", "aborts", "identical");

  bool allIdentical = true;
  const EngineConfig cfg{.threads = g_serial ? std::size_t{1} : 0};
  for (const std::size_t total : {36u, 72u}) {
    const auto reqs = mixedWorkload(/*apps=*/3, total);

    // Naive loop: per-request engine, nothing amortized (PR 1 behavior).
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<OptimizedPlan> loop;
    loop.reserve(reqs.size());
    for (const auto& r : reqs) {
      PlanEngine fresh{cfg};
      loop.push_back(fresh.optimize(r));
    }
    const auto t1 = std::chrono::steady_clock::now();

    // Batched: one engine, one optimizeBatch call.
    PlanEngine engine{cfg};
    const auto batch = engine.optimizeBatch(reqs);
    const auto t2 = std::chrono::steady_clock::now();

    std::size_t unique = 0;
    std::size_t crossHits = 0;
    std::size_t shared = 0;
    std::size_t aborts = 0;
    bool identical = true;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      unique += batch[i].stats.crossRequestHits == 0 ? 1 : 0;
      crossHits += batch[i].stats.crossRequestHits;
      shared += batch[i].stats.sharedHits;
      aborts += batch[i].stats.boundAborts;
      identical = identical && batch[i].value == loop[i].value &&
                  batch[i].strategy == loop[i].strategy;
    }
    // The loop reference above is pooled-per-request; the contract is
    // against *serial* per-request optimizePlan, so spot-check that too.
    for (std::size_t i = 0; i < reqs.size(); i += 7) {
      OptimizerOptions serial = reqs[i].options;
      serial.threads = 1;
      const auto r = optimizePlan(reqs[i].app, reqs[i].model,
                                  reqs[i].objective, serial);
      identical = identical && batch[i].value == r.value &&
                  batch[i].strategy == r.strategy;
    }
    allIdentical = allIdentical && identical;

    const double loopMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double batchMs =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", loopMs / batchMs);
    std::printf("%-9zu %-7zu %-10.1f %-10.1f %-9s %-9zu %-8zu %-7zu %-9s\n",
                reqs.size(), unique, loopMs, batchMs, speedup, crossHits,
                shared, aborts, identical ? "yes" : "NO!");
  }
  std::printf("\n");
  return allIdentical;
}

void BM_OptimizeBatch(benchmark::State& state) {
  const auto total = static_cast<std::size_t>(state.range(0));
  const auto reqs = mixedWorkload(/*apps=*/2, total);
  const EngineConfig cfg{.threads = g_serial ? std::size_t{1} : 0};
  for (auto _ : state) {
    PlanEngine engine{cfg};
    auto out = engine.optimizeBatch(reqs);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(total));
}
BENCHMARK(BM_OptimizeBatch)->Arg(12)->Arg(36)->Unit(benchmark::kMillisecond);

void BM_WarmCacheOptimize(benchmark::State& state) {
  // Steady-state serving: the same request against a warm long-lived
  // engine (every surrogate score a shared-cache hit).
  const auto reqs = mixedWorkload(/*apps=*/1, 6);
  const EngineConfig cfg{.threads = g_serial ? std::size_t{1} : 0};
  PlanEngine engine{cfg};
  (void)engine.optimizeBatch(reqs);
  std::size_t i = 0;
  for (auto _ : state) {
    auto r = engine.optimize(reqs[i++ % reqs.size()]);
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_WarmCacheOptimize)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  g_serial = fswbench::stripFlag(argc, argv, "--serial");
  const bool identical = printServingTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return identical ? 0 : 1;
}
