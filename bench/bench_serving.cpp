// E8 — batched serving: one long-lived PlanEngine vs a naive per-request
// loop on a mixed (app, model, objective) workload with duplicate traffic.
//
// The table times three ways of serving the same >= 32-request workload:
//
//   loop[ms]   — the naive baseline: a fresh engine per request (PR 1's
//                per-call wiring), requests solved one after another;
//   batch[ms]  — PlanEngine::optimizeBatch on one long-lived engine:
//                cross-request dedup, shared score cache, incumbent-bounded
//                orchestration, requests fanned out over the pool;
//   and a winner-identity check against per-request *serial* optimizePlan —
//   the determinism contract across serial / pooled / batched execution.
//
// E9 adds the async front end: the same 72-request mixed workload pushed
// through PlanServer::submit one request at a time, reporting throughput
// and the p50/p95 submit-to-result latency per drain configuration next
// to the one-shot optimizeBatch reference — plus the same winner-identity
// gate across the sync and async paths.
//
// E10 adds sharding: four waves of the 18-unique-request workload through
// a PlanServer whose backend is one PlanEngine vs a ShardedPlanEngine (2
// and 4 shards), with full-result caching off so repeated waves re-solve.
// Re-solves consult the cross-shard incumbent board; xaborts totals every
// incumbent-driven abort, so equal counts across rows certify that
// sharding added no duplicated work (the board's *extra* pruning is
// workload-dependent — it bites when the surrogate misranks rank 0, or
// when rank 0's order enumeration contains dominated orders) while the
// winners stay bit-identical to the serial reference.
//
// E11 adds multi-host routing: the same 18-unique-request workload (two
// waves — cold, then warm repeats) pushed through a PlanRouter over 1 vs 3
// PlanServiceHosts on loopback TCP, reporting throughput and p50/p95
// submit-to-result latency per fleet size. Wave 2 is served from the far
// side's full-result caches (warmhits counts the resultCacheHits that
// crossed back), and the identity gate checks every request of every wave
// against the serial reference — the bit-identity contract through the
// whole wire path.
//
// E12 adds the wire/artifact size trajectory: the paper instances encoded
// in the frozen text dialect vs wire codec v3 (result-cache and score-cache
// artifacts, plan request/response payloads, store PUT/reply payloads),
// plus the measured store bytes-per-request on cold and warm traffic. Its
// gate is twofold: winners stay bit-identical across text-loaded vs
// binary-loaded warm starts and across the remote/sharded/multi-host
// paths, AND the binary dialect shrinks result-cache artifacts and store
// PUT payloads by >= 3x. `--wire_json <path>` dumps the deterministic size
// rows for the bench-trajectory baseline check
// (bench/check_wire_sizes.py vs bench/baselines/BENCH_wire.json).
//
// E13 adds the transport scaling table: 16/64/256/1024 concurrent clients
// hammering a warm ResultStoreHost with GET round trips, epoll reactor vs
// the legacy thread-per-connection transport — throughput, p50/p95 op
// latency, the host's transport thread count, and connections-per-thread.
// The client side is one poll()-driven thread over raw nonblocking
// sockets, so the sweep measures the host, not client scheduling. Each
// point reports its best-of-3 trial by p95 (the minimum strips scheduler
// noise; identity must hold in every trial). Its gate is threefold: every reply decodes to the bit-identical stored
// winner at every client count on both transports, the reactor's thread
// count stays fixed across the sweep (O(1) in connections), and at >= 256
// clients the reactor carries >= 2x the connections-per-thread of the
// legacy transport. `--transport_json <path>` dumps throughput and
// latency rows for the bench-trajectory regression check
// (bench/check_transport.py vs bench/baselines/BENCH_transport.json).
//
// Exits nonzero when any batched, async, sharded *or multi-host* winner
// diverges from the serial reference — or when an E13 transport gate
// fails — so CI gates on it (`--serial` forces the engines fully serial;
// the identity checks still run).
#include <benchmark/benchmark.h>

#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/common/util.hpp"
#include "src/io/serialize.hpp"
#include "src/opt/optimizer.hpp"
#include "src/sched/overlap.hpp"
#include "src/serve/bound_board.hpp"
#include "src/serve/plan_engine.hpp"
#include "src/serve/plan_router.hpp"
#include "src/serve/plan_server.hpp"
#include "src/serve/plan_service.hpp"
#include "src/serve/result_cache.hpp"
#include "src/serve/result_store.hpp"
#include "src/serve/sharded_engine.hpp"
#include "src/sim/scenario_driver.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_instances.hpp"
#include "src/workload/trace.hpp"

namespace {

using namespace fsw;

bool g_serial = false;  ///< --serial: force the engine serial

OptimizerOptions servingOptions() {
  OptimizerOptions opt;
  opt.exactForestMaxN = 5;
  opt.heuristics.iterations = 400;
  opt.heuristics.restarts = 2;
  opt.orchestrator.order.exactCap = 120;
  opt.orchestrator.order.localSearchIters = 80;
  opt.orchestrator.outorder.restarts = 6;
  opt.orchestrator.outorder.bisectSteps = 5;
  return opt;
}

/// A mixed serving workload: `apps` distinct applications x three models x
/// two objectives, cycled until `total` requests — so with total >
/// 6 * apps the tail repeats earlier traffic (the serving-cache case).
std::vector<PlanRequest> mixedWorkload(std::size_t apps, std::size_t total) {
  std::vector<PlanRequest> base;
  Prng rng(8100);
  for (std::size_t a = 0; a < apps; ++a) {
    WorkloadSpec spec;
    spec.n = 5 + a % 3;
    spec.precedenceDensity = a % 2 == 0 ? 0.0 : 0.2;
    const auto app = randomApplication(spec, rng);
    for (const CommModel m : kAllModels) {
      for (const Objective obj : {Objective::Period, Objective::Latency}) {
        base.push_back({app, m, obj, servingOptions()});
      }
    }
  }
  std::vector<PlanRequest> reqs;
  reqs.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    reqs.push_back(base[i % base.size()]);
  }
  return reqs;
}

/// E8: batch-vs-loop wall clock plus the winner-identity gate. Returns
/// false when any batch winner diverges from the serial reference.
[[nodiscard]] bool printServingTable() {
  std::printf("E8: batched serving, %s engine (%u hardware threads)\n",
              g_serial ? "serial" : "pooled",
              std::thread::hardware_concurrency());
  std::printf("%-9s %-7s %-10s %-10s %-9s %-9s %-8s %-7s %-9s\n", "requests",
              "unique", "loop[ms]", "batch[ms]", "speedup", "xreqhits",
              "shared", "aborts", "identical");

  bool allIdentical = true;
  const EngineConfig cfg{.threads = g_serial ? std::size_t{1} : 0};
  for (const std::size_t total : {36u, 72u}) {
    const auto reqs = mixedWorkload(/*apps=*/3, total);

    // Naive loop: per-request engine, nothing amortized (PR 1 behavior).
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<OptimizedPlan> loop;
    loop.reserve(reqs.size());
    for (const auto& r : reqs) {
      PlanEngine fresh{cfg};
      loop.push_back(fresh.optimize(r));
    }
    const auto t1 = std::chrono::steady_clock::now();

    // Batched: one engine, one optimizeBatch call.
    PlanEngine engine{cfg};
    const auto batch = engine.optimizeBatch(reqs);
    const auto t2 = std::chrono::steady_clock::now();

    std::size_t unique = 0;
    std::size_t crossHits = 0;
    std::size_t shared = 0;
    std::size_t aborts = 0;
    bool identical = true;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      unique += batch[i].stats.crossRequestHits == 0 ? 1 : 0;
      crossHits += batch[i].stats.crossRequestHits;
      shared += batch[i].stats.sharedHits;
      aborts += batch[i].stats.boundAborts;
      identical = identical && batch[i].value == loop[i].value &&
                  batch[i].strategy == loop[i].strategy;
    }
    // The loop reference above is pooled-per-request; the contract is
    // against *serial* per-request optimizePlan, so spot-check that too.
    for (std::size_t i = 0; i < reqs.size(); i += 7) {
      OptimizerOptions serial = reqs[i].options;
      serial.threads = 1;
      const auto r = optimizePlan(reqs[i].app, reqs[i].model,
                                  reqs[i].objective, serial);
      identical = identical && batch[i].value == r.value &&
                  batch[i].strategy == r.strategy;
    }
    allIdentical = allIdentical && identical;

    const double loopMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double batchMs =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", loopMs / batchMs);
    std::printf("%-9zu %-7zu %-10.1f %-10.1f %-9s %-9zu %-8zu %-7zu %-9s\n",
                reqs.size(), unique, loopMs, batchMs, speedup, crossHits,
                shared, aborts, identical ? "yes" : "NO!");
  }
  std::printf("\n");
  return allIdentical;
}

/// E9: the async front end vs the one-shot batch on the 72-request mixed
/// workload — throughput plus p50/p95 submit-to-result latency — with the
/// winner-identity gate across sync and async. Returns false on any
/// divergence from the serial reference.
[[nodiscard]] bool printAsyncServingTable() {
  const auto reqs = mixedWorkload(/*apps=*/3, /*total=*/72);
  std::printf("E9: async serving (PlanServer), %s engine\n",
              g_serial ? "serial" : "pooled");
  std::printf("%-14s %-9s %-10s %-12s %-9s %-9s %-10s %-9s\n", "mode",
              "requests", "total[ms]", "thruput[r/s]", "p50[ms]", "p95[ms]",
              "coalesced", "identical");

  // Serial per-request reference for the identity gate (spot-checked, as
  // in E8 — the full check would dominate the bench's runtime).
  std::vector<std::size_t> spots;
  std::vector<OptimizedPlan> refs;
  for (std::size_t i = 0; i < reqs.size(); i += 7) {
    OptimizerOptions serial = reqs[i].options;
    serial.threads = 1;
    spots.push_back(i);
    refs.push_back(
        optimizePlan(reqs[i].app, reqs[i].model, reqs[i].objective, serial));
  }
  const auto checkIdentity = [&](const auto& valueAt, const auto& strategyAt) {
    bool identical = true;
    for (std::size_t s = 0; s < spots.size(); ++s) {
      identical = identical && valueAt(spots[s]) == refs[s].value &&
                  strategyAt(spots[s]) == refs[s].strategy;
    }
    return identical;
  };

  bool allIdentical = true;
  const EngineConfig cfg{.threads = g_serial ? std::size_t{1} : 0};

  // Reference row: one blocking optimizeBatch — every request's
  // submit-to-result latency is the batch's total wall clock.
  {
    PlanEngine engine{cfg};
    const auto t0 = std::chrono::steady_clock::now();
    const auto batch = engine.optimizeBatch(reqs);
    const auto t1 = std::chrono::steady_clock::now();
    const double totalMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const bool identical =
        checkIdentity([&](std::size_t i) { return batch[i].value; },
                      [&](std::size_t i) { return batch[i].strategy; });
    allIdentical = allIdentical && identical;
    std::printf("%-14s %-9zu %-10.1f %-12.1f %-9.1f %-9.1f %-10s %-9s\n",
                "batch", reqs.size(), totalMs,
                1000.0 * static_cast<double>(reqs.size()) / totalMs, totalMs,
                totalMs, "-", identical ? "yes" : "NO!");
  }

  // Async rows: submit one request at a time; waiter threads stamp each
  // future the moment it becomes ready, so the latency columns measure
  // submit-to-result per request, coalescing included.
  for (const std::size_t maxBatch : {std::size_t{8}, std::size_t{1}}) {
    PlanEngine engine{cfg};
    ServerConfig sc;
    sc.engine = &engine;
    sc.maxBatch = maxBatch;
    sc.drainThreads = g_serial ? 1 : 2;
    PlanServer server{sc};

    const std::size_t n = reqs.size();
    std::vector<std::future<OptimizedPlan>> futures(n);
    std::vector<std::chrono::steady_clock::time_point> submitted(n), done(n);
    std::vector<std::thread> waiters;
    waiters.reserve(n);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      submitted[i] = std::chrono::steady_clock::now();
      futures[i] = server.submit(reqs[i]);
      waiters.emplace_back([&, i] {
        futures[i].wait();
        done[i] = std::chrono::steady_clock::now();
      });
    }
    server.drain();
    for (auto& w : waiters) w.join();
    const auto t1 = std::chrono::steady_clock::now();

    std::vector<OptimizedPlan> results;
    results.reserve(n);
    for (auto& f : futures) results.push_back(f.get());
    std::vector<double> latencies(n);
    for (std::size_t i = 0; i < n; ++i) {
      latencies[i] =
          std::chrono::duration<double, std::milli>(done[i] - submitted[i])
              .count();
    }
    const double totalMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const bool identical =
        checkIdentity([&](std::size_t i) { return results[i].value; },
                      [&](std::size_t i) { return results[i].strategy; });
    allIdentical = allIdentical && identical;

    char mode[32];
    std::snprintf(mode, sizeof(mode), "async b=%zu", maxBatch);
    std::printf("%-14s %-9zu %-10.1f %-12.1f %-9.1f %-9.1f %-10zu %-9s\n",
                mode, n, totalMs,
                1000.0 * static_cast<double>(n) / totalMs,
                percentile(latencies, 0.50), percentile(latencies, 0.95),
                server.stats().coalesced, identical ? "yes" : "NO!");
  }
  std::printf("\n");
  return allIdentical;
}

/// E10: sharded serving — four waves of the 18-unique-request workload
/// through a PlanServer backed by one engine vs a ShardedPlanEngine, with
/// full-result caching off so waves 2..4 re-solve under the cross-shard
/// incumbent board (xaborts totals incumbent-driven aborts; equal counts
/// across rows = no duplicated work from sharding). Returns false on any
/// divergence from the serial reference.
[[nodiscard]] bool printShardedServingTable(
    const std::vector<PlanRequest>& unique,
    const std::vector<OptimizedPlan>& refs) {
  constexpr std::size_t kWaves = 4;
  std::printf("E10: sharded serving (ShardedPlanEngine), %s engine\n",
              g_serial ? "serial" : "pooled");
  std::printf("%-10s %-9s %-10s %-12s %-9s %-9s %-9s %-9s\n", "mode",
              "requests", "total[ms]", "thruput[r/s]", "p50[ms]", "p95[ms]",
              "xaborts", "identical");

  bool allIdentical = true;
  EngineConfig shardCfg{.threads = g_serial ? std::size_t{1} : 0};
  shardCfg.cacheFullResults = false;

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    // shards == 1 is the unsharded baseline: one PlanEngine, no board.
    PlanEngine single{shardCfg};
    ShardedPlanEngine sharded{
        ShardedEngineConfig{.shards = shards, .shard = shardCfg}};
    ServerConfig sc;
    sc.solver = shards == 1 ? static_cast<PlanSolver*>(&single)
                            : static_cast<PlanSolver*>(&sharded);
    sc.maxBatch = 8;
    sc.drainThreads = g_serial ? 1 : 2;
    PlanServer server{sc};

    const std::size_t n = unique.size() * kWaves;
    std::vector<double> latencies;
    latencies.reserve(n);
    std::size_t aborts = 0;
    bool identical = true;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t wave = 0; wave < kWaves; ++wave) {
      std::vector<std::future<OptimizedPlan>> futures;
      std::vector<std::chrono::steady_clock::time_point> submitted;
      futures.reserve(unique.size());
      submitted.reserve(unique.size());
      for (const auto& r : unique) {
        submitted.push_back(std::chrono::steady_clock::now());
        futures.push_back(server.submit(r));
      }
      // Waves are drained one at a time, so identical traffic re-solves
      // in the next wave (no coalescing across waves) — the board case.
      server.drain();
      for (std::size_t i = 0; i < futures.size(); ++i) {
        const auto plan = futures[i].get();
        latencies.push_back(std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() -
                                submitted[i])
                                .count());
        aborts += plan.stats.boundAborts;
        identical = identical && plan.value == refs[i].value &&
                    plan.strategy == refs[i].strategy;
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    allIdentical = allIdentical && identical;

    const double totalMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    char mode[32];
    std::snprintf(mode, sizeof(mode), "shards=%zu", shards);
    std::printf("%-10s %-9zu %-10.1f %-12.1f %-9.1f %-9.1f %-9zu %-9s\n",
                mode, n, totalMs,
                1000.0 * static_cast<double>(n) / totalMs,
                percentile(latencies, 0.50), percentile(latencies, 0.95),
                aborts, identical ? "yes" : "NO!");
  }
  std::printf("\n");
  return allIdentical;
}

/// E11: multi-host routing — two waves (cold, then warm repeats) of the
/// 18-unique-request workload through a PlanRouter over 1 vs 3
/// PlanServiceHosts, each a full socket host over its own engine. The
/// warmhits column counts wave-2 requests served wholesale by the far
/// side's full-result caches (resultCacheHits crossing the wire back).
/// Returns false on any divergence from the serial reference.
[[nodiscard]] bool printMultiHostTable(
    const std::vector<PlanRequest>& unique,
    const std::vector<OptimizedPlan>& refs) {
  constexpr std::size_t kWaves = 2;
  std::printf("E11: multi-host routing (PlanRouter), %s engines\n",
              g_serial ? "serial" : "pooled");
  std::printf("%-10s %-9s %-10s %-12s %-9s %-9s %-9s %-10s %-9s\n", "mode",
              "requests", "total[ms]", "thruput[r/s]", "p50[ms]", "p95[ms]",
              "warmhits", "failovers", "identical");

  bool allIdentical = true;
  for (const std::size_t hostCount : {std::size_t{1}, std::size_t{3}}) {
    std::vector<std::unique_ptr<PlanServiceHost>> hosts;
    RouterConfig rc;
    for (std::size_t h = 0; h < hostCount; ++h) {
      ServiceHostConfig hc;
      hc.serverConfig.engineConfig.threads = g_serial ? std::size_t{1} : 0;
      hc.serverConfig.maxBatch = 8;
      hc.serverConfig.drainThreads = g_serial ? 1 : 2;
      hosts.push_back(std::make_unique<PlanServiceHost>(hc));
      rc.hosts.push_back(RouterHost{"127.0.0.1", hosts.back()->port()});
    }
    PlanRouter router{rc};

    const std::size_t n = unique.size() * kWaves;
    std::vector<double> latencies;
    latencies.reserve(n);
    std::size_t warmHits = 0;
    bool identical = true;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t wave = 0; wave < kWaves; ++wave) {
      std::vector<std::future<OptimizedPlan>> futures;
      std::vector<std::chrono::steady_clock::time_point> submitted;
      futures.reserve(unique.size());
      submitted.reserve(unique.size());
      for (const auto& r : unique) {
        submitted.push_back(std::chrono::steady_clock::now());
        futures.push_back(router.submit(r));
      }
      for (std::size_t i = 0; i < futures.size(); ++i) {
        const auto plan = futures[i].get();
        latencies.push_back(std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() -
                                submitted[i])
                                .count());
        warmHits += plan.stats.resultCacheHits;
        identical = identical && plan.value == refs[i].value &&
                    plan.strategy == refs[i].strategy;
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    allIdentical = allIdentical && identical;

    const double totalMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    char mode[32];
    std::snprintf(mode, sizeof(mode), "hosts=%zu", hostCount);
    std::printf("%-10s %-9zu %-10.1f %-12.1f %-9.1f %-9.1f %-9zu %-10zu "
                "%-9s\n",
                mode, n, totalMs,
                1000.0 * static_cast<double>(n) / totalMs,
                percentile(latencies, 0.50), percentile(latencies, 0.95),
                warmHits, router.stats().failovers,
                identical ? "yes" : "NO!");
  }
  std::printf("\n");
  return allIdentical;
}

/// True when the doubles carry the identical bit pattern (the identity
/// contract is bit-exact, and == would blur -0.0 vs 0.0 and reject NaN).
bool bitsEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(a)) == 0;
}

/// E12's solve options: light enough that 18 serial reference solves stay
/// in the tens of milliseconds, heavy enough that every engine layer
/// (heuristics, order search, outorder repair) contributes to the winner.
OptimizerOptions wireOptions() {
  OptimizerOptions opt;
  opt.exactForestMaxN = 5;
  opt.heuristics.iterations = 200;
  opt.heuristics.restarts = 2;
  opt.orchestrator.order.exactCap = 120;
  opt.orchestrator.order.localSearchIters = 80;
  opt.orchestrator.outorder.restarts = 4;
  opt.orchestrator.outorder.bisectSteps = 4;
  return opt;
}

/// One E12 size row: the same payload in both dialects.
struct SizeRow {
  const char* name;
  std::size_t textBytes = 0;
  std::size_t binBytes = 0;
  const char* jsonKey = nullptr;  ///< null = unstable across runs, not dumped
};

/// E12: wire codec v3 vs the frozen text dialect on the paper instances —
/// artifact and payload sizes, store bytes-per-request, and the identity
/// gate across text/binary warm starts and every serving path. Returns
/// false on any winner divergence from the serial reference OR when the
/// binary dialect fails the >= 3x shrink floor on result-cache artifacts
/// and store PUT payloads.
[[nodiscard]] bool printWireTable(const char* jsonPath) {
  std::printf("E12: wire codec v3 vs frozen text (paper instances), "
              "%s engine\n",
              g_serial ? "serial" : "pooled");

  // The solve grid: the three small paper instances x three models x two
  // objectives. B.1 (202 services) is too heavy to replay through every
  // path, so it joins the *size* rows below via its known comm-aware
  // optimum schedule instead of an optimizer run.
  std::vector<PlanRequest> reqs;
  for (const PaperInstance& pi :
       {sec23Example(), counterexampleB2(), counterexampleB3()}) {
    for (const CommModel m : kAllModels) {
      for (const Objective obj : {Objective::Period, Objective::Latency}) {
        reqs.push_back({pi.app, m, obj, wireOptions()});
      }
    }
  }
  std::vector<OptimizedPlan> refs;
  refs.reserve(reqs.size());
  for (const auto& r : reqs) {
    OptimizerOptions serial = r.options;
    serial.threads = 1;
    refs.push_back(optimizePlan(r.app, r.model, r.objective, serial));
  }

  // B.1's artifact entry: the paper's two-star optimum (period 100 under
  // OVERLAP), packaged as the winner its request would cache.
  const PaperInstance b1 = counterexampleB1();
  OptimizedPlan b1Plan;
  b1Plan.plan.graph = b1.graph;
  b1Plan.plan.ol = overlapPeriodSchedule(b1.app, b1.graph);
  b1Plan.value = b1Plan.plan.ol.period();
  b1Plan.surrogate = b1Plan.value;
  b1Plan.strategy = "paper/b1-two-star";
  const std::string b1Key = PlanEngine::requestKey(
      {b1.app, CommModel::Overlap, Objective::Period, wireOptions()});

  // The result-cache artifact every warm start below loads: the 18 grid
  // winners plus B.1, inserted in fixed order so both dialects (and the
  // JSON sizes) are deterministic.
  ResultCache artifact{0};
  std::vector<std::string> keys;
  keys.reserve(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    keys.push_back(PlanEngine::requestKey(reqs[i]));
    (void)artifact.insert(keys.back(), refs[i]);
  }
  (void)artifact.insert(b1Key, b1Plan);

  std::ostringstream resultBin;
  writeResultCache(resultBin, artifact);
  std::ostringstream resultText;
  writeResultCacheText(resultText, artifact);

  // The score-cache artifact from a warm engine. Its entry *set* is
  // deterministic, but the LRU order (and so the front-coded size) can
  // wobble under a pool — displayed, never dumped to the JSON.
  const EngineConfig cfg{.threads = g_serial ? std::size_t{1} : 0};
  std::ostringstream scoreBin;
  std::ostringstream scoreText;
  std::size_t scoreEntries = 0;
  {
    PlanEngine warm{cfg};
    (void)warm.optimizeBatch(reqs);
    warm.saveCache(scoreBin);
    CandidateCache copy;
    std::istringstream in(scoreBin.str());
    readCandidateCache(in, copy);
    scoreEntries = copy.size();
    writeCandidateCacheText(scoreText, copy);
  }

  // Per-request wire payloads, summed over the grid (PUT includes B.1 —
  // exactly the payload a host publishing its solve would send).
  std::size_t reqText = 0, reqBin = 0, respText = 0, respBin = 0;
  std::size_t putText = 0, putBin = 0, replyText = 0, replyBin = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    std::ostringstream rt;
    writePlanRequest(rt, reqs[i]);
    reqText += rt.str().size();
    reqBin += encodePlanRequest(reqs[i]).size();
    std::ostringstream pt;
    writeOptimizedPlan(pt, refs[i]);
    respText += pt.str().size();
    respBin += encodeOptimizedPlan(refs[i]).size();
    std::ostringstream st;
    writeStorePut(st, keys[i], refs[i]);
    putText += st.str().size();
    putBin += encodeStorePut(keys[i], refs[i]).size();
    std::ostringstream yt;
    writeStoreReply(yt, &refs[i], refs[i].value);
    replyText += yt.str().size();
    replyBin += encodeStoreReply(&refs[i], refs[i].value).size();
  }
  {
    std::ostringstream st;
    writeStorePut(st, b1Key, b1Plan);
    putText += st.str().size();
    putBin += encodeStorePut(b1Key, b1Plan).size();
  }

  const SizeRow rows[] = {
      {"result-cache artifact (19 entries)", resultText.str().size(),
       resultBin.str().size(), "result_cache_bytes"},
      {"score-cache artifact", scoreText.str().size(), scoreBin.str().size(),
       nullptr},
      {"plan requests (x18)", reqText, reqBin, "plan_request_bytes"},
      {"plan responses (x18)", respText, respBin, "plan_response_bytes"},
      {"store PUT (x19)", putText, putBin, "store_put_bytes"},
      {"store GET replies (x18)", replyText, replyBin, "store_reply_bytes"},
  };
  std::printf("%-36s %-10s %-10s %-7s\n", "payload", "text[B]", "bin[B]",
              "shrink");
  for (const SizeRow& row : rows) {
    char shrink[32];
    std::snprintf(shrink, sizeof(shrink), "%.2fx",
                  static_cast<double>(row.textBytes) /
                      static_cast<double>(row.binBytes));
    std::printf("%-36s %-10zu %-10zu %-7s\n", row.name, row.textBytes,
                row.binBytes, shrink);
  }
  std::printf("(score-cache artifact: %zu entries; size excluded from the "
              "JSON baseline — LRU order is pool-dependent)\n",
              scoreEntries);

  const auto identical = [&](const OptimizedPlan& got, std::size_t i) {
    return bitsEqual(got.value, refs[i].value) &&
           got.strategy == refs[i].strategy &&
           graphSignature(got.plan.graph) ==
               graphSignature(refs[i].plan.graph) &&
           toString(got.plan.ol) == toString(refs[i].plan.ol);
  };

  // Warm starts: one engine loads the text artifact, one the binary — the
  // migration contract is that both serve every grid request wholesale
  // with the bit-identical winner.
  bool warmTextOk = true;
  bool warmBinOk = true;
  for (const bool binary : {false, true}) {
    PlanEngine engine{cfg};
    std::istringstream in(binary ? resultBin.str() : resultText.str());
    engine.loadResults(in);
    bool ok = true;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const OptimizedPlan got = engine.optimize(reqs[i]);
      ok = ok && identical(got, i) && got.stats.resultCacheHits == 1;
    }
    (binary ? warmBinOk : warmTextOk) = ok;
  }

  // The store round trip: engine A solves cold and publishes every winner
  // (binary PUTs on the wire); a fresh engine B serves the whole grid
  // wholesale from the store (binary GET replies). The measured per-
  // request wire bytes are the before/after story on live traffic.
  bool storeOk = true;
  double coldBytesPerReq = 0;
  double warmBytesPerReq = 0;
  {
    ResultStoreHost store{{}};
    RemoteResultStore clientA{"127.0.0.1", store.port()};
    RemoteResultStore clientB{"127.0.0.1", store.port()};
    EngineConfig storeCfg = cfg;
    storeCfg.resultStore = &clientA;
    PlanEngine engineA{storeCfg};
    const auto cold = engineA.optimizeBatch(reqs);
    storeCfg.resultStore = &clientB;
    PlanEngine engineB{storeCfg};
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const OptimizedPlan got = engineB.optimize(reqs[i]);
      storeOk = storeOk && identical(got, i) &&
                got.stats.resultCacheHits == 1 &&
                got.stats.storeBytesReceived > 0;
    }
    for (const auto& p : cold) {
      storeOk = storeOk && p.stats.crossRequestHits == 0;
    }
    const auto sa = clientA.stats();
    const auto sb = clientB.stats();
    coldBytesPerReq =
        static_cast<double>(sa.bytesSent + sa.bytesReceived) /
        static_cast<double>(reqs.size());
    warmBytesPerReq =
        static_cast<double>(sb.bytesSent + sb.bytesReceived) /
        static_cast<double>(reqs.size());
  }

  // Sharded and multi-host: the same grid through a 2-shard engine and a
  // 2-host router fleet (cold wave, then a warm wave served from the far
  // side's result caches) — all binary on the wire.
  bool shardedOk = true;
  {
    ShardedPlanEngine sharded{ShardedEngineConfig{.shards = 2, .shard = cfg}};
    const auto out = sharded.optimizeBatch(reqs);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      shardedOk = shardedOk && identical(out[i], i);
    }
  }
  bool routerOk = true;
  {
    std::vector<std::unique_ptr<PlanServiceHost>> hosts;
    RouterConfig rc;
    for (std::size_t h = 0; h < 2; ++h) {
      ServiceHostConfig hc;
      hc.serverConfig.engineConfig = cfg;
      hc.serverConfig.maxBatch = 8;
      hc.serverConfig.drainThreads = g_serial ? 1 : 2;
      hosts.push_back(std::make_unique<PlanServiceHost>(hc));
      rc.hosts.push_back(RouterHost{"127.0.0.1", hosts.back()->port()});
    }
    PlanRouter router{rc};
    for (std::size_t wave = 0; wave < 2; ++wave) {
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        const OptimizedPlan got = router.optimize(reqs[i]);
        routerOk = routerOk && identical(got, i) &&
                   got.stats.resultCacheHits == wave;
      }
    }
  }

  const double resultShrink =
      static_cast<double>(resultText.str().size()) /
      static_cast<double>(resultBin.str().size());
  const double putShrink =
      static_cast<double>(putText) / static_cast<double>(putBin);
  const bool shrinkOk = resultShrink >= 3.0 && putShrink >= 3.0;
  std::printf("store traffic: cold %.0f B/req, warm %.0f B/req (binary, "
              "frame headers included)\n",
              coldBytesPerReq, warmBytesPerReq);
  std::printf("identity: warm-text %s | warm-bin %s | store %s | sharded %s "
              "| router %s;  shrink floor (>=3x): %s\n\n",
              warmTextOk ? "yes" : "NO!", warmBinOk ? "yes" : "NO!",
              storeOk ? "yes" : "NO!", shardedOk ? "yes" : "NO!",
              routerOk ? "yes" : "NO!", shrinkOk ? "met" : "MISSED");

  if (jsonPath != nullptr) {
    std::ofstream out(jsonPath);
    out << "{\n  \"schema\": \"fsw-bench-wire\",\n  \"bench_version\": 1";
    for (const SizeRow& row : rows) {
      if (row.jsonKey == nullptr) continue;
      out << ",\n  \"" << row.jsonKey << "_text\": " << row.textBytes << ",\n"
          << "  \"" << row.jsonKey << "_bin\": " << row.binBytes;
    }
    out << "\n}\n";
  }

  return warmTextOk && warmBinOk && storeOk && shardedOk && routerOk &&
         shrinkOk;
}

/// Same structure, drifted parameters: the near-key scenario. Service names
/// are dropped — they never affect plan values or request keys.
Application mutateParams(const Application& app, double costScale,
                         double selScale) {
  Application out;
  for (const Service& s : app.services()) {
    out.addService(s.cost * costScale, s.selectivity * selScale);
  }
  for (const Precedence& p : app.precedences()) {
    out.addPrecedence(p.from, p.to);
  }
  return out;
}

/// E14: near-key warm starts — a mutated re-solve (same graph shape and
/// precedences, drifted costs/selectivities) fetches the nearest prior
/// winner by structural prefix, re-evaluates its orders under the NEW
/// parameters, and runs under that certified incumbent. Three paths:
///
///   board      — one engine with a BoundBoard: base solves publish, the
///                mutated re-solves warm-start off the board's near table
///                (cold[ms] is the same engine shape without a board, so
///                the delta is the near bound's effect, score caches warm
///                in both);
///   store      — engine A publishes to a ResultStoreHost, a fresh engine
///                B warm-starts its mutated solves through near GETs;
///   store-dead — the host is stopped first: near consults degrade to
///                misses and the solves proceed unwarmed.
///
/// Gates (exit code): every mutated re-solve returns the bit-identical
/// fresh serial reference with resultCacheHits == 0 (a neighbor's plan
/// must never be served, only its re-validated value used as a bound);
/// the board and store paths each record a near hit; and the warm bounds
/// actually pruned (total boundAborts > 0 across the warm re-solves).
[[nodiscard]] bool printWarmStartTable() {
  std::printf("E14: near-key warm starts (mutated re-solves), %s engine\n",
              g_serial ? "serial" : "pooled");
  std::printf("%-11s %-9s %-10s %-10s %-9s %-8s %-9s\n", "path", "requests",
              "cold[ms]", "warm[ms]", "nearhits", "aborts", "identical");

  Prng rng(8400);
  WorkloadSpec spec;
  spec.n = 8;
  spec.precedenceDensity = 0.2;
  const auto app = randomApplication(spec, rng);
  OptimizerOptions opt = servingOptions();
  opt.orchestrator.outorder.restarts = 8;
  opt.orchestrator.outorder.repairIters = 160;
  std::vector<PlanRequest> base;
  for (const CommModel m : {CommModel::InOrder, CommModel::OutOrder}) {
    for (const Objective obj : {Objective::Period, Objective::Latency}) {
      base.push_back({app, m, obj, opt});
    }
  }
  const auto mutated = [&](double costScale, double selScale) {
    const Application drift = mutateParams(app, costScale, selScale);
    std::vector<PlanRequest> reqs = base;
    for (auto& r : reqs) r.app = drift;
    return reqs;
  };
  const auto serialRefs = [](const std::vector<PlanRequest>& reqs) {
    std::vector<OptimizedPlan> refs;
    refs.reserve(reqs.size());
    for (const auto& r : reqs) {
      OptimizerOptions serial = r.options;
      serial.threads = 1;
      refs.push_back(optimizePlan(r.app, r.model, r.objective, serial));
    }
    return refs;
  };
  const auto identical = [](const OptimizedPlan& got,
                            const OptimizedPlan& ref) {
    return bitsEqual(got.value, ref.value) && got.strategy == ref.strategy &&
           graphSignature(got.plan.graph) == graphSignature(ref.plan.graph) &&
           toString(got.plan.ol) == toString(ref.plan.ol) &&
           got.stats.resultCacheHits == 0;
  };
  const EngineConfig cfg{.threads = g_serial ? std::size_t{1} : 0};

  const auto drifted = mutated(1.15, 0.95);
  const auto refs = serialRefs(drifted);

  bool allOk = true;
  std::size_t warmAborts = 0;

  // Board path (and its no-board cold reference: same base warm-up, same
  // score-cache state, the near bound is the only difference).
  {
    PlanEngine cold{cfg};
    for (const auto& r : base) (void)cold.optimize(r);
    const auto c0 = std::chrono::steady_clock::now();
    std::vector<OptimizedPlan> coldOut;
    for (const auto& r : drifted) coldOut.push_back(cold.optimize(r));
    const auto c1 = std::chrono::steady_clock::now();

    BoundBoard board{256};
    EngineConfig boardCfg = cfg;
    boardCfg.boundBoard = &board;
    PlanEngine warm{boardCfg};
    for (const auto& r : base) (void)warm.optimize(r);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<OptimizedPlan> warmOut;
    for (const auto& r : drifted) warmOut.push_back(warm.optimize(r));
    const auto t1 = std::chrono::steady_clock::now();

    bool ok = true;
    std::size_t aborts = 0;
    for (std::size_t i = 0; i < drifted.size(); ++i) {
      ok = ok && identical(coldOut[i], refs[i]) &&
           identical(warmOut[i], refs[i]);
      aborts += warmOut[i].stats.boundAborts;
    }
    const std::size_t nearHits = board.stats().nearHits;
    ok = ok && nearHits > 0;
    allOk = allOk && ok;
    warmAborts += aborts;
    std::printf("%-11s %-9zu %-10.1f %-10.1f %-9zu %-8zu %-9s\n", "board",
                drifted.size(),
                std::chrono::duration<double, std::milli>(c1 - c0).count(),
                std::chrono::duration<double, std::milli>(t1 - t0).count(),
                nearHits, aborts, ok ? "yes" : "NO!");
  }

  // Store path, then store death: engine B keeps its degraded client.
  {
    ResultStoreHost store{{}};
    RemoteResultStore clientA{"127.0.0.1", store.port()};
    RemoteResultStore clientB{"127.0.0.1", store.port()};
    EngineConfig aCfg = cfg;
    aCfg.resultStore = &clientA;
    PlanEngine engineA{aCfg};
    for (const auto& r : base) (void)engineA.optimize(r);

    EngineConfig bCfg = cfg;
    bCfg.resultStore = &clientB;
    PlanEngine engineB{bCfg};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<OptimizedPlan> out;
    for (const auto& r : drifted) out.push_back(engineB.optimize(r));
    const auto t1 = std::chrono::steady_clock::now();

    bool ok = true;
    std::size_t aborts = 0;
    for (std::size_t i = 0; i < drifted.size(); ++i) {
      ok = ok && identical(out[i], refs[i]);
      aborts += out[i].stats.boundAborts;
    }
    const std::size_t nearHits = clientB.stats().nearHits;
    ok = ok && nearHits > 0 && store.stats().nearGets > 0;
    allOk = allOk && ok;
    warmAborts += aborts;
    std::printf("%-11s %-9zu %-10s %-10.1f %-9zu %-8zu %-9s\n", "store",
                drifted.size(), "-",
                std::chrono::duration<double, std::milli>(t1 - t0).count(),
                nearHits, aborts, ok ? "yes" : "NO!");

    // Store death: a further drift (new keys) against the stopped host —
    // near consults degrade to misses, the solves must stay identical.
    store.stop();
    const auto dead = mutated(1.3, 1.0);
    const auto deadRefs = serialRefs(dead);
    const auto d0 = std::chrono::steady_clock::now();
    bool deadOk = true;
    for (std::size_t i = 0; i < dead.size(); ++i) {
      deadOk = deadOk && identical(engineB.optimize(dead[i]), deadRefs[i]);
    }
    const auto d1 = std::chrono::steady_clock::now();
    allOk = allOk && deadOk;
    std::printf("%-11s %-9zu %-10s %-10.1f %-9d %-8d %-9s\n", "store-dead",
                dead.size(), "-",
                std::chrono::duration<double, std::milli>(d1 - d0).count(), 0,
                0, deadOk ? "yes" : "NO!");
  }

  if (warmAborts == 0) {
    std::printf("E14 FAILURE: no incumbent aborts on the warm re-solves — "
                "the near-key bound never pruned\n");
  }
  std::printf("\n");
  return allOk && warmAborts > 0;
}

// ---- E15: dynamic trace replay --------------------------------------------

/// Lighter per-solve knobs than servingOptions(): the replay certifies
/// ~500 mutated applications against cold serial references, so each
/// solve must stay in the low-millisecond band to keep the table quick.
OptimizerOptions replayOptions() {
  OptimizerOptions opt;
  opt.exactForestMaxN = 5;
  opt.heuristics.iterations = 200;
  opt.heuristics.restarts = 2;
  opt.orchestrator.order.exactCap = 120;
  opt.orchestrator.outorder.restarts = 4;
  opt.orchestrator.outorder.bisectSteps = 4;
  return opt;
}

/// E15: the serving stack under *evolving* load — a generated 520-event
/// trace (bursty heavy-tailed arrivals, hot-stream drift/add/remove
/// mutations, one mid-trace host kill + revive) replayed through a
/// PlanRouter over two PlanServiceHosts sharing a BoundBoard and a
/// ResultStoreHost. Every mutation derives the successor request and
/// re-solves it through the fleet; the PR 9 near-key machinery warm-starts
/// the drifted re-solves.
///
/// Gates (exit code): the trace codec round trip is byte-identical; every
/// re-solved winner is bit-identical to a cold one-shot serial
/// optimizePlan of the mutated application (ScenarioDriver certification);
/// the replay recorded at least one near hit (the warm-start path actually
/// fired) and exactly the scheduled host kill/revive pair. Tail latency
/// and hit-rate trajectories are exported via --replay_json for
/// check_replay.py to gate against the checked-in baseline.
[[nodiscard]] bool printReplayTable(const char* jsonPath) {
  TraceSpec spec;
  spec.events = 520;
  spec.streams = 6;
  spec.hosts = 2;
  spec.hostKills = 1;
  spec.workload.n = 5;
  spec.workload.precedenceDensity = 0.15;
  const Trace trace = generateTrace(spec, 8500);
  const std::string blob = encodeTrace(trace);
  const bool codecOk = encodeTrace(decodeTrace(blob)) == blob;

  std::printf("E15: dynamic trace replay, %zu events / %zu streams through a "
              "2-host fleet, %s engine\n",
              trace.events.size(), spec.streams,
              g_serial ? "serial" : "pooled");
  std::printf("(trace: %zu wire bytes, codec round-trip %s)\n", blob.size(),
              codecOk ? "byte-identical" : "DIVERGED");

  BoundBoard board{1 << 12};
  ResultStoreHost store{{}};
  std::vector<std::unique_ptr<RemoteResultStore>> clients;
  std::vector<std::unique_ptr<PlanServiceHost>> hosts;
  std::vector<std::uint16_t> ports;
  RouterConfig rc;
  const auto hostConfig = [&](std::size_t h) {
    ServiceHostConfig hc;
    hc.serverConfig.maxBatch = 8;
    hc.serverConfig.drainThreads = g_serial ? 1 : 2;
    hc.serverConfig.engineConfig.threads = g_serial ? std::size_t{1} : 0;
    hc.serverConfig.engineConfig.boundBoard = &board;
    hc.serverConfig.engineConfig.resultStore = clients[h].get();
    return hc;
  };
  for (std::size_t h = 0; h < 2; ++h) {
    clients.push_back(
        std::make_unique<RemoteResultStore>("127.0.0.1", store.port()));
    hosts.push_back(std::make_unique<PlanServiceHost>(hostConfig(h)));
    ports.push_back(hosts.back()->port());
    rc.hosts.push_back(RouterHost{"127.0.0.1", ports.back()});
  }
  PlanRouter router{rc};

  ScenarioConfig sc;
  sc.maxInFlight = 8;
  sc.options = replayOptions();
  sc.board = &board;
  sc.store = &store;
  sc.router = &router;
  ScenarioDriver driver{
      sc, [&](const PlanRequest& r) { return router.submit(r); },
      [&](std::uint32_t h) { hosts[h].reset(); },
      [&](std::uint32_t h) {
        ServiceHostConfig hc = hostConfig(h);
        hc.port = ports[h];
        hosts[h] = std::make_unique<PlanServiceHost>(hc);
        (void)router.reconnect();
      }};

  const auto t0 = std::chrono::steady_clock::now();
  const ScenarioReport report = driver.replay(trace);
  const auto t1 = std::chrono::steady_clock::now();
  const double wallMs =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  std::printf("%-7s %-7s %-9s %-9s %-9s %-9s %-7s %-10s %-10s %-9s\n",
              "events", "solves", "p50[ms]", "p95[ms]", "p99[ms]", "nearhits",
              "aborts", "cachehits", "failovers", "identical");
  std::printf("%-7zu %-7zu %-9.2f %-9.2f %-9.2f %-9zu %-7zu %-10zu %-10zu "
              "%-9s\n",
              report.events, report.solves, report.p50Ms, report.p95Ms,
              report.p99Ms, report.nearHits(), report.boundAborts,
              report.resultCacheHits, report.routerFailovers,
              report.allIdentical() ? "yes" : "NO!");
  std::printf("warm starts: board near hits %zu, store near hits %zu (of "
              "%zu near GETs); store exact hits %zu, %zu store wire bytes; "
              "%zu cold refs certified %zu solves in %.0f ms\n",
              report.boardNearHits, report.storeNearHits, report.storeNearGets,
              report.storeExactHits, report.storeBytes, report.coldRefSolves,
              report.solves, wallMs);

  for (const std::string& note : report.mismatchNotes) {
    std::printf("E15 MISMATCH: %s\n", note.c_str());
  }
  const bool fleetOk = report.hostKills == 1 && report.hostRevives == 1 &&
                       router.hostUp(0) && router.hostUp(1);
  const bool nearOk = report.nearHits() > 0;
  if (!fleetOk) {
    std::printf("E15 FAILURE: the host kill/revive pair did not replay "
                "(kills %zu, revives %zu)\n",
                report.hostKills, report.hostRevives);
  }
  if (!nearOk) {
    std::printf("E15 FAILURE: no near hits — the warm-start path never "
                "fired across %zu re-solves\n", report.solves);
  }
  std::printf("\n");

  if (jsonPath != nullptr) {
    std::ofstream out(jsonPath);
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\n"
                  "  \"schema\": \"fsw-bench-replay\",\n"
                  "  \"bench_version\": 1,\n"
                  "  \"replay_events\": %zu,\n"
                  "  \"replay_solves\": %zu,\n"
                  "  \"replay_identical\": %d,\n"
                  "  \"replay_mismatches\": %zu,\n"
                  "  \"replay_host_kills\": %zu,\n"
                  "  \"replay_near_hits\": %zu,\n"
                  "  \"replay_board_near_hits\": %zu,\n"
                  "  \"replay_store_near_hits\": %zu,\n",
                  report.events, report.solves,
                  report.allIdentical() ? 1 : 0, report.mismatches,
                  report.hostKills, report.nearHits(), report.boardNearHits,
                  report.storeNearHits);
    out << buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"replay_store_exact_hits\": %zu,\n"
                  "  \"replay_bound_aborts\": %zu,\n"
                  "  \"replay_result_cache_hits\": %zu,\n"
                  "  \"replay_failovers\": %zu,\n"
                  "  \"replay_reconnects\": %zu,\n"
                  "  \"replay_codec_bytes\": %zu,\n"
                  "  \"replay_codec_roundtrip\": %d,\n"
                  "  \"replay_p50_ms\": %.3f,\n"
                  "  \"replay_p95_ms\": %.3f,\n"
                  "  \"replay_p99_ms\": %.3f\n"
                  "}\n",
                  report.storeExactHits, report.boundAborts,
                  report.resultCacheHits, report.routerFailovers,
                  report.routerReconnects, blob.size(), codecOk ? 1 : 0,
                  report.p50Ms, report.p95Ms, report.p99Ms);
    out << buf;
  }

  return codecOk && report.allIdentical() && fleetOk && nearOk;
}

// ---- E13: transport scaling -----------------------------------------------

/// Best-effort RLIMIT_NOFILE raise; returns the soft limit afterwards.
/// The 1024-client row needs ~2x that many fds in one process (each
/// loopback connection is a client fd here and a host fd there).
std::size_t raiseFdLimit(rlim_t want) {
  struct rlimit rl{};
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return 256;
  if (rl.rlim_cur < want) {
    struct rlimit bump = rl;
    bump.rlim_cur = rl.rlim_max == RLIM_INFINITY
                        ? want
                        : (want < rl.rlim_max ? want : rl.rlim_max);
    if (setrlimit(RLIMIT_NOFILE, &bump) == 0) rl = bump;
  }
  return rl.rlim_cur == RLIM_INFINITY ? (1u << 20)
                                      : static_cast<std::size_t>(rl.rlim_cur);
}

/// One client's in-flight state in the poll() loop: a pending GET being
/// written, a reply being assembled across partial reads, and the op
/// clock for the latency columns.
struct RawStoreClient {
  int fd = -1;
  std::size_t outPos = 0;
  std::string in;
  std::size_t opsDone = 0;
  std::chrono::steady_clock::time_point opStart;
  bool done = false;
};

/// Runs `clients` concurrent connections through `ops` GET round trips
/// each against a fresh warm store on transport `mode`, multiplexed by
/// one poll() loop. Fills the latency samples (one per op), the wall
/// clock of the whole burst, and the host's transport thread count
/// sampled at full load. False on any stall, dropped connection, frame
/// corruption, or reply that is not the bit-identical stored winner.
[[nodiscard]] bool runTransportRow(frameio::TransportMode mode,
                                   std::size_t clients, std::size_t ops,
                                   const OptimizedPlan& plan,
                                   std::vector<double>& latencies,
                                   double& totalMs,
                                   std::size_t& hostThreads) {
  ResultStoreConfig rc;
  rc.transport.mode = mode;
  ResultStoreHost store{rc};
  const PlanRequest keyReq{sec23Example().app, CommModel::Overlap,
                           Objective::Period, wireOptions()};
  const std::string key = PlanEngine::requestKey(keyReq);
  store.results().insert(key, plan);
  const std::string getFrame =
      encodeFrame(FrameType::StoreGet, encodeStoreGet(key));
  const std::string signature = graphSignature(plan.plan.graph);

  std::vector<RawStoreClient> conns(clients);
  bool ok = true;
  for (auto& c : conns) {
    c.fd = frameio::connectTcp("127.0.0.1", store.port(), "E13", 10000);
    const int flags = fcntl(c.fd, F_GETFL, 0);
    ok = ok && flags >= 0 && fcntl(c.fd, F_SETFL, flags | O_NONBLOCK) == 0;
  }
  // The accept side is asynchronous: wait (bounded) until the host has
  // accepted every connection so the thread-count sample sees full load —
  // the legacy transport's count is 1 + live connections.
  const auto acceptDeadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (store.stats().connections < clients &&
         std::chrono::steady_clock::now() < acceptDeadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  hostThreads = store.stats().transportThreads;

  // Every client fires its first GET in one burst, then the loop drives
  // each connection's send -> assemble-reply -> next-op machine.
  const auto t0 = std::chrono::steady_clock::now();
  for (auto& c : conns) c.opStart = t0;
  std::size_t live = clients;
  std::vector<struct pollfd> fds;
  std::vector<std::size_t> slot;
  while (live > 0 && ok) {
    fds.clear();
    slot.clear();
    for (std::size_t i = 0; i < conns.size(); ++i) {
      if (conns[i].done) continue;
      struct pollfd p{};
      p.fd = conns[i].fd;
      p.events = static_cast<short>(
          conns[i].outPos < getFrame.size() ? POLLOUT | POLLIN : POLLIN);
      fds.push_back(p);
      slot.push_back(i);
    }
    const int ready = ::poll(fds.data(), fds.size(), 30000);
    if (ready <= 0) {
      std::printf("E13: poll %s with %zu clients still live\n",
                  ready == 0 ? "stalled" : "failed", live);
      ok = false;
      break;
    }
    for (std::size_t f = 0; f < fds.size() && ok; ++f) {
      if (fds[f].revents == 0) continue;
      RawStoreClient& c = conns[slot[f]];
      if ((fds[f].revents & (POLLERR | POLLNVAL)) != 0) {
        ok = false;
        break;
      }
      if ((fds[f].revents & POLLOUT) != 0 && c.outPos < getFrame.size()) {
        const ssize_t sent =
            ::send(c.fd, getFrame.data() + c.outPos,
                   getFrame.size() - c.outPos, MSG_NOSIGNAL);
        if (sent > 0) {
          c.outPos += static_cast<std::size_t>(sent);
        } else if (errno != EAGAIN && errno != EWOULDBLOCK) {
          ok = false;
          break;
        }
      }
      if ((fds[f].revents & (POLLIN | POLLHUP)) != 0) {
        char buf[65536];
        const ssize_t got = ::recv(c.fd, buf, sizeof(buf), 0);
        if (got > 0) {
          c.in.append(buf, static_cast<std::size_t>(got));
        } else if (got == 0 ||
                   (errno != EAGAIN && errno != EWOULDBLOCK)) {
          ok = false;  // the host must outlive the whole burst
          break;
        }
        // Consume every complete reply frame the read completed.
        while (c.in.size() >= frameio::kFrameHeaderSize) {
          std::uint32_t len = 0;
          for (int b = 0; b < 4; ++b) {
            len = (len << 8) | static_cast<std::uint8_t>(c.in[6 + b]);
          }
          if (std::memcmp(c.in.data(), kFrameMagic, 4) != 0 ||
              c.in[5] != static_cast<char>(FrameType::Result)) {
            ok = false;
            break;
          }
          if (c.in.size() < frameio::kFrameHeaderSize + len) break;
          const auto now = std::chrono::steady_clock::now();
          latencies.push_back(
              std::chrono::duration<double, std::milli>(now - c.opStart)
                  .count());
          const StoreReply reply = decodeStoreReply(std::string_view(
              c.in.data() + frameio::kFrameHeaderSize, len));
          ok = ok && reply.found && bitsEqual(reply.plan.value, plan.value) &&
               graphSignature(reply.plan.plan.graph) == signature;
          c.in.erase(0, frameio::kFrameHeaderSize + len);
          ++c.opsDone;
          if (c.opsDone >= ops) {
            c.done = true;
            --live;
            break;
          }
          c.outPos = 0;  // next op: re-send the GET frame
          c.opStart = now;
        }
      }
    }
  }
  totalMs = std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
  for (auto& c : conns) {
    if (c.fd >= 0) ::close(c.fd);
  }
  return ok;
}

/// E13: the concurrent-client sweep, reactor vs thread-per-connection.
/// Returns false on any identity/stall failure, a reactor thread count
/// that scales with clients, or a reactor connections-per-thread ratio
/// under 2x the legacy transport's at >= 256 clients.
[[nodiscard]] bool printTransportTable(const char* jsonPath) {
  std::printf("E13: serving transport scaling (warm store GETs, one "
              "poll()-driven client thread)\n");
  std::printf("%-10s %-8s %-10s %-14s %-9s %-9s %-12s %-13s %-9s\n", "mode",
              "clients", "total[ms]", "thruput[op/s]", "p50[ms]", "p95[ms]",
              "hostthreads", "conns/thread", "identical");

  // The stored winner every GET fetches: one real solve of the paper's
  // Section 2.3 instance, so replies carry a genuine plan payload.
  const PlanRequest req{sec23Example().app, CommModel::Overlap,
                        Objective::Period, wireOptions()};
  OptimizerOptions serial = req.options;
  serial.threads = 1;
  const OptimizedPlan plan =
      optimizePlan(req.app, req.model, req.objective, serial);

  constexpr std::size_t kOps = 8;
  const std::size_t fdLimit = raiseFdLimit(4096);
  std::vector<std::size_t> counts;
  for (const std::size_t c : {16u, 64u, 256u, 1024u}) {
    // Both endpoints of every loopback connection live in this process,
    // plus listener/epoll/eventfd/handler plumbing and whatever is
    // already open: keep a generous margin under the fd ceiling.
    if (2 * c + 128 <= fdLimit) {
      counts.push_back(c);
    } else {
      std::printf("(skipping %zu clients: RLIMIT_NOFILE=%zu is too low)\n", c,
                  fdLimit);
    }
  }

  struct Row {
    frameio::TransportMode mode;
    std::size_t clients = 0;
    double totalMs = 0;
    double opsPerSec = 0;
    double p50 = 0, p95 = 0;
    std::size_t hostThreads = 0;
    bool ok = false;
  };
  std::vector<Row> rows;
  for (const frameio::TransportMode mode :
       {frameio::TransportMode::Reactor,
        frameio::TransportMode::ThreadPerConnection}) {
    for (const std::size_t clients : counts) {
      Row row;
      row.mode = mode;
      row.clients = clients;
      // Best-of-N trials, keyed on p95: wall-clock latency at the
      // oversubscribed end of the sweep is dominated by scheduler noise
      // (run-to-run p95 swings far beyond any sane gate tolerance on a
      // loaded box), and the minimum across trials is the standard
      // denoiser — it approaches the machine's true cost while the mean
      // measures the neighbours. Identity must hold in EVERY trial.
      constexpr int kTrials = 3;
      row.ok = true;
      for (int trial = 0; trial < kTrials; ++trial) {
        std::vector<double> latencies;
        latencies.reserve(clients * kOps);
        double totalMs = 0;
        std::size_t hostThreads = 0;
        row.ok = runTransportRow(mode, clients, kOps, plan, latencies,
                                 totalMs, hostThreads) &&
                 row.ok;
        if (latencies.empty()) continue;
        const double p95 = percentile(latencies, 0.95);
        if (trial == 0 || p95 < row.p95) {
          row.p50 = percentile(latencies, 0.50);
          row.p95 = p95;
          row.totalMs = totalMs;
          row.hostThreads = hostThreads;
        }
      }
      row.opsPerSec = 1000.0 * static_cast<double>(clients * kOps) /
                      (row.totalMs > 0 ? row.totalMs : 1.0);
      const double ratio = static_cast<double>(clients) /
                           static_cast<double>(
                               row.hostThreads > 0 ? row.hostThreads : 1);
      std::printf("%-10s %-8zu %-10.1f %-14.0f %-9.2f %-9.2f %-12zu %-13.1f "
                  "%-9s\n",
                  mode == frameio::TransportMode::Reactor ? "reactor"
                                                          : "thread/conn",
                  clients, row.totalMs, row.opsPerSec, row.p50, row.p95,
                  row.hostThreads, ratio, row.ok ? "yes" : "NO!");
      rows.push_back(row);
    }
  }

  bool allOk = true;
  std::size_t reactorThreads = 0;
  bool reactorFixed = true;
  for (const Row& row : rows) {
    allOk = allOk && row.ok;
    if (row.mode != frameio::TransportMode::Reactor) continue;
    if (reactorThreads == 0) reactorThreads = row.hostThreads;
    reactorFixed = reactorFixed && row.hostThreads == reactorThreads;
  }
  bool densityOk = true;
  for (const Row& row : rows) {
    if (row.mode != frameio::TransportMode::Reactor || row.clients < 256) {
      continue;
    }
    for (const Row& legacy : rows) {
      if (legacy.mode == frameio::TransportMode::Reactor ||
          legacy.clients != row.clients) {
        continue;
      }
      const double reactorDensity =
          static_cast<double>(row.clients) /
          static_cast<double>(row.hostThreads > 0 ? row.hostThreads : 1);
      const double legacyDensity =
          static_cast<double>(legacy.clients) /
          static_cast<double>(legacy.hostThreads > 0 ? legacy.hostThreads
                                                     : 1);
      densityOk = densityOk && reactorDensity >= 2.0 * legacyDensity;
    }
  }
  std::printf("transport gates: identity %s | reactor threads fixed (%zu) %s "
              "| >=2x conns/thread at >=256 clients %s\n\n",
              allOk ? "yes" : "NO!", reactorThreads,
              reactorFixed ? "yes" : "NO!", densityOk ? "yes" : "NO!");

  if (jsonPath != nullptr) {
    std::ofstream out(jsonPath);
    out << "{\n  \"schema\": \"fsw-bench-transport\",\n"
           "  \"bench_version\": 1";
    for (const Row& row : rows) {
      const char* tag = row.mode == frameio::TransportMode::Reactor
                            ? "reactor"
                            : "legacy";
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    ",\n"
                    "  \"%s_c%zu_p50_ms\": %.3f,\n"
                    "  \"%s_c%zu_p95_ms\": %.3f,\n"
                    "  \"%s_c%zu_ops_per_s\": %.0f",
                    tag, row.clients, row.p50, tag, row.clients, row.p95,
                    tag, row.clients, row.opsPerSec);
      out << buf;
    }
    out << "\n}\n";
  }
  return allOk && reactorFixed && densityOk;
}

void BM_OptimizeBatch(benchmark::State& state) {
  const auto total = static_cast<std::size_t>(state.range(0));
  const auto reqs = mixedWorkload(/*apps=*/2, total);
  const EngineConfig cfg{.threads = g_serial ? std::size_t{1} : 0};
  for (auto _ : state) {
    PlanEngine engine{cfg};
    auto out = engine.optimizeBatch(reqs);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(total));
}
BENCHMARK(BM_OptimizeBatch)->Arg(12)->Arg(36)->Unit(benchmark::kMillisecond);

void BM_WarmCacheOptimize(benchmark::State& state) {
  // Steady-state serving: the same request against a warm long-lived
  // engine — since PR 3 that is a wholesale full-result-cache hit.
  const auto reqs = mixedWorkload(/*apps=*/1, 6);
  const EngineConfig cfg{.threads = g_serial ? std::size_t{1} : 0};
  PlanEngine engine{cfg};
  (void)engine.optimizeBatch(reqs);
  std::size_t i = 0;
  for (auto _ : state) {
    auto r = engine.optimize(reqs[i++ % reqs.size()]);
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_WarmCacheOptimize)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  g_serial = fswbench::stripFlag(argc, argv, "--serial");
  const char* wireJson = fswbench::stripValueFlag(argc, argv, "--wire_json");
  const char* transportJson =
      fswbench::stripValueFlag(argc, argv, "--transport_json");
  const char* replayJson =
      fswbench::stripValueFlag(argc, argv, "--replay_json");
  const bool batchIdentical = printServingTable();
  const bool asyncIdentical = printAsyncServingTable();

  // E10 and E11 gate every wave against one full serial reference of the
  // shared 18-unique-request workload (computed once — it dominates the
  // reference cost).
  const auto unique18 = mixedWorkload(/*apps=*/3, /*total=*/18);
  std::vector<OptimizedPlan> refs18;
  refs18.reserve(unique18.size());
  for (const auto& r : unique18) {
    OptimizerOptions serial = r.options;
    serial.threads = 1;
    refs18.push_back(optimizePlan(r.app, r.model, r.objective, serial));
  }
  const bool shardedIdentical = printShardedServingTable(unique18, refs18);
  const bool multiHostIdentical = printMultiHostTable(unique18, refs18);
  const bool wireOk = printWireTable(wireJson);
  const bool warmStartOk = printWarmStartTable();
  const bool replayOk = printReplayTable(replayJson);
  const bool transportOk = printTransportTable(transportJson);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return batchIdentical && asyncIdentical && shardedIdentical &&
                 multiHostIdentical && wireOk && warmStartOk && replayOk &&
                 transportOk
             ? 0
             : 1;
}
