// E8 — batched serving: one long-lived PlanEngine vs a naive per-request
// loop on a mixed (app, model, objective) workload with duplicate traffic.
//
// The table times three ways of serving the same >= 32-request workload:
//
//   loop[ms]   — the naive baseline: a fresh engine per request (PR 1's
//                per-call wiring), requests solved one after another;
//   batch[ms]  — PlanEngine::optimizeBatch on one long-lived engine:
//                cross-request dedup, shared score cache, incumbent-bounded
//                orchestration, requests fanned out over the pool;
//   and a winner-identity check against per-request *serial* optimizePlan —
//   the determinism contract across serial / pooled / batched execution.
//
// E9 adds the async front end: the same 72-request mixed workload pushed
// through PlanServer::submit one request at a time, reporting throughput
// and the p50/p95 submit-to-result latency per drain configuration next
// to the one-shot optimizeBatch reference — plus the same winner-identity
// gate across the sync and async paths.
//
// E10 adds sharding: four waves of the 18-unique-request workload through
// a PlanServer whose backend is one PlanEngine vs a ShardedPlanEngine (2
// and 4 shards), with full-result caching off so repeated waves re-solve.
// Re-solves consult the cross-shard incumbent board; xaborts totals every
// incumbent-driven abort, so equal counts across rows certify that
// sharding added no duplicated work (the board's *extra* pruning is
// workload-dependent — it bites when the surrogate misranks rank 0, or
// when rank 0's order enumeration contains dominated orders) while the
// winners stay bit-identical to the serial reference.
//
// E11 adds multi-host routing: the same 18-unique-request workload (two
// waves — cold, then warm repeats) pushed through a PlanRouter over 1 vs 3
// PlanServiceHosts on loopback TCP, reporting throughput and p50/p95
// submit-to-result latency per fleet size. Wave 2 is served from the far
// side's full-result caches (warmhits counts the resultCacheHits that
// crossed back), and the identity gate checks every request of every wave
// against the serial reference — the bit-identity contract through the
// whole wire path.
//
// Exits nonzero when any batched, async, sharded *or multi-host* winner
// diverges from the serial reference, so CI gates on it (`--serial`
// forces the engines fully serial; the identity checks still run).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/common/util.hpp"
#include "src/opt/optimizer.hpp"
#include "src/serve/plan_engine.hpp"
#include "src/serve/plan_router.hpp"
#include "src/serve/plan_server.hpp"
#include "src/serve/plan_service.hpp"
#include "src/serve/sharded_engine.hpp"
#include "src/workload/generator.hpp"

namespace {

using namespace fsw;

bool g_serial = false;  ///< --serial: force the engine serial

OptimizerOptions servingOptions() {
  OptimizerOptions opt;
  opt.exactForestMaxN = 5;
  opt.heuristics.iterations = 400;
  opt.heuristics.restarts = 2;
  opt.orchestrator.order.exactCap = 120;
  opt.orchestrator.order.localSearchIters = 80;
  opt.orchestrator.outorder.restarts = 6;
  opt.orchestrator.outorder.bisectSteps = 5;
  return opt;
}

/// A mixed serving workload: `apps` distinct applications x three models x
/// two objectives, cycled until `total` requests — so with total >
/// 6 * apps the tail repeats earlier traffic (the serving-cache case).
std::vector<PlanRequest> mixedWorkload(std::size_t apps, std::size_t total) {
  std::vector<PlanRequest> base;
  Prng rng(8100);
  for (std::size_t a = 0; a < apps; ++a) {
    WorkloadSpec spec;
    spec.n = 5 + a % 3;
    spec.precedenceDensity = a % 2 == 0 ? 0.0 : 0.2;
    const auto app = randomApplication(spec, rng);
    for (const CommModel m : kAllModels) {
      for (const Objective obj : {Objective::Period, Objective::Latency}) {
        base.push_back({app, m, obj, servingOptions()});
      }
    }
  }
  std::vector<PlanRequest> reqs;
  reqs.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    reqs.push_back(base[i % base.size()]);
  }
  return reqs;
}

/// E8: batch-vs-loop wall clock plus the winner-identity gate. Returns
/// false when any batch winner diverges from the serial reference.
[[nodiscard]] bool printServingTable() {
  std::printf("E8: batched serving, %s engine (%u hardware threads)\n",
              g_serial ? "serial" : "pooled",
              std::thread::hardware_concurrency());
  std::printf("%-9s %-7s %-10s %-10s %-9s %-9s %-8s %-7s %-9s\n", "requests",
              "unique", "loop[ms]", "batch[ms]", "speedup", "xreqhits",
              "shared", "aborts", "identical");

  bool allIdentical = true;
  const EngineConfig cfg{.threads = g_serial ? std::size_t{1} : 0};
  for (const std::size_t total : {36u, 72u}) {
    const auto reqs = mixedWorkload(/*apps=*/3, total);

    // Naive loop: per-request engine, nothing amortized (PR 1 behavior).
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<OptimizedPlan> loop;
    loop.reserve(reqs.size());
    for (const auto& r : reqs) {
      PlanEngine fresh{cfg};
      loop.push_back(fresh.optimize(r));
    }
    const auto t1 = std::chrono::steady_clock::now();

    // Batched: one engine, one optimizeBatch call.
    PlanEngine engine{cfg};
    const auto batch = engine.optimizeBatch(reqs);
    const auto t2 = std::chrono::steady_clock::now();

    std::size_t unique = 0;
    std::size_t crossHits = 0;
    std::size_t shared = 0;
    std::size_t aborts = 0;
    bool identical = true;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      unique += batch[i].stats.crossRequestHits == 0 ? 1 : 0;
      crossHits += batch[i].stats.crossRequestHits;
      shared += batch[i].stats.sharedHits;
      aborts += batch[i].stats.boundAborts;
      identical = identical && batch[i].value == loop[i].value &&
                  batch[i].strategy == loop[i].strategy;
    }
    // The loop reference above is pooled-per-request; the contract is
    // against *serial* per-request optimizePlan, so spot-check that too.
    for (std::size_t i = 0; i < reqs.size(); i += 7) {
      OptimizerOptions serial = reqs[i].options;
      serial.threads = 1;
      const auto r = optimizePlan(reqs[i].app, reqs[i].model,
                                  reqs[i].objective, serial);
      identical = identical && batch[i].value == r.value &&
                  batch[i].strategy == r.strategy;
    }
    allIdentical = allIdentical && identical;

    const double loopMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double batchMs =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", loopMs / batchMs);
    std::printf("%-9zu %-7zu %-10.1f %-10.1f %-9s %-9zu %-8zu %-7zu %-9s\n",
                reqs.size(), unique, loopMs, batchMs, speedup, crossHits,
                shared, aborts, identical ? "yes" : "NO!");
  }
  std::printf("\n");
  return allIdentical;
}

/// E9: the async front end vs the one-shot batch on the 72-request mixed
/// workload — throughput plus p50/p95 submit-to-result latency — with the
/// winner-identity gate across sync and async. Returns false on any
/// divergence from the serial reference.
[[nodiscard]] bool printAsyncServingTable() {
  const auto reqs = mixedWorkload(/*apps=*/3, /*total=*/72);
  std::printf("E9: async serving (PlanServer), %s engine\n",
              g_serial ? "serial" : "pooled");
  std::printf("%-14s %-9s %-10s %-12s %-9s %-9s %-10s %-9s\n", "mode",
              "requests", "total[ms]", "thruput[r/s]", "p50[ms]", "p95[ms]",
              "coalesced", "identical");

  // Serial per-request reference for the identity gate (spot-checked, as
  // in E8 — the full check would dominate the bench's runtime).
  std::vector<std::size_t> spots;
  std::vector<OptimizedPlan> refs;
  for (std::size_t i = 0; i < reqs.size(); i += 7) {
    OptimizerOptions serial = reqs[i].options;
    serial.threads = 1;
    spots.push_back(i);
    refs.push_back(
        optimizePlan(reqs[i].app, reqs[i].model, reqs[i].objective, serial));
  }
  const auto checkIdentity = [&](const auto& valueAt, const auto& strategyAt) {
    bool identical = true;
    for (std::size_t s = 0; s < spots.size(); ++s) {
      identical = identical && valueAt(spots[s]) == refs[s].value &&
                  strategyAt(spots[s]) == refs[s].strategy;
    }
    return identical;
  };

  bool allIdentical = true;
  const EngineConfig cfg{.threads = g_serial ? std::size_t{1} : 0};

  // Reference row: one blocking optimizeBatch — every request's
  // submit-to-result latency is the batch's total wall clock.
  {
    PlanEngine engine{cfg};
    const auto t0 = std::chrono::steady_clock::now();
    const auto batch = engine.optimizeBatch(reqs);
    const auto t1 = std::chrono::steady_clock::now();
    const double totalMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const bool identical =
        checkIdentity([&](std::size_t i) { return batch[i].value; },
                      [&](std::size_t i) { return batch[i].strategy; });
    allIdentical = allIdentical && identical;
    std::printf("%-14s %-9zu %-10.1f %-12.1f %-9.1f %-9.1f %-10s %-9s\n",
                "batch", reqs.size(), totalMs,
                1000.0 * static_cast<double>(reqs.size()) / totalMs, totalMs,
                totalMs, "-", identical ? "yes" : "NO!");
  }

  // Async rows: submit one request at a time; waiter threads stamp each
  // future the moment it becomes ready, so the latency columns measure
  // submit-to-result per request, coalescing included.
  for (const std::size_t maxBatch : {std::size_t{8}, std::size_t{1}}) {
    PlanEngine engine{cfg};
    ServerConfig sc;
    sc.engine = &engine;
    sc.maxBatch = maxBatch;
    sc.drainThreads = g_serial ? 1 : 2;
    PlanServer server{sc};

    const std::size_t n = reqs.size();
    std::vector<std::future<OptimizedPlan>> futures(n);
    std::vector<std::chrono::steady_clock::time_point> submitted(n), done(n);
    std::vector<std::thread> waiters;
    waiters.reserve(n);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      submitted[i] = std::chrono::steady_clock::now();
      futures[i] = server.submit(reqs[i]);
      waiters.emplace_back([&, i] {
        futures[i].wait();
        done[i] = std::chrono::steady_clock::now();
      });
    }
    server.drain();
    for (auto& w : waiters) w.join();
    const auto t1 = std::chrono::steady_clock::now();

    std::vector<OptimizedPlan> results;
    results.reserve(n);
    for (auto& f : futures) results.push_back(f.get());
    std::vector<double> latencies(n);
    for (std::size_t i = 0; i < n; ++i) {
      latencies[i] =
          std::chrono::duration<double, std::milli>(done[i] - submitted[i])
              .count();
    }
    const double totalMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const bool identical =
        checkIdentity([&](std::size_t i) { return results[i].value; },
                      [&](std::size_t i) { return results[i].strategy; });
    allIdentical = allIdentical && identical;

    char mode[32];
    std::snprintf(mode, sizeof(mode), "async b=%zu", maxBatch);
    std::printf("%-14s %-9zu %-10.1f %-12.1f %-9.1f %-9.1f %-10zu %-9s\n",
                mode, n, totalMs,
                1000.0 * static_cast<double>(n) / totalMs,
                percentile(latencies, 0.50), percentile(latencies, 0.95),
                server.stats().coalesced, identical ? "yes" : "NO!");
  }
  std::printf("\n");
  return allIdentical;
}

/// E10: sharded serving — four waves of the 18-unique-request workload
/// through a PlanServer backed by one engine vs a ShardedPlanEngine, with
/// full-result caching off so waves 2..4 re-solve under the cross-shard
/// incumbent board (xaborts totals incumbent-driven aborts; equal counts
/// across rows = no duplicated work from sharding). Returns false on any
/// divergence from the serial reference.
[[nodiscard]] bool printShardedServingTable(
    const std::vector<PlanRequest>& unique,
    const std::vector<OptimizedPlan>& refs) {
  constexpr std::size_t kWaves = 4;
  std::printf("E10: sharded serving (ShardedPlanEngine), %s engine\n",
              g_serial ? "serial" : "pooled");
  std::printf("%-10s %-9s %-10s %-12s %-9s %-9s %-9s %-9s\n", "mode",
              "requests", "total[ms]", "thruput[r/s]", "p50[ms]", "p95[ms]",
              "xaborts", "identical");

  bool allIdentical = true;
  EngineConfig shardCfg{.threads = g_serial ? std::size_t{1} : 0};
  shardCfg.cacheFullResults = false;

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    // shards == 1 is the unsharded baseline: one PlanEngine, no board.
    PlanEngine single{shardCfg};
    ShardedPlanEngine sharded{
        ShardedEngineConfig{.shards = shards, .shard = shardCfg}};
    ServerConfig sc;
    sc.solver = shards == 1 ? static_cast<PlanSolver*>(&single)
                            : static_cast<PlanSolver*>(&sharded);
    sc.maxBatch = 8;
    sc.drainThreads = g_serial ? 1 : 2;
    PlanServer server{sc};

    const std::size_t n = unique.size() * kWaves;
    std::vector<double> latencies;
    latencies.reserve(n);
    std::size_t aborts = 0;
    bool identical = true;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t wave = 0; wave < kWaves; ++wave) {
      std::vector<std::future<OptimizedPlan>> futures;
      std::vector<std::chrono::steady_clock::time_point> submitted;
      futures.reserve(unique.size());
      submitted.reserve(unique.size());
      for (const auto& r : unique) {
        submitted.push_back(std::chrono::steady_clock::now());
        futures.push_back(server.submit(r));
      }
      // Waves are drained one at a time, so identical traffic re-solves
      // in the next wave (no coalescing across waves) — the board case.
      server.drain();
      for (std::size_t i = 0; i < futures.size(); ++i) {
        const auto plan = futures[i].get();
        latencies.push_back(std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() -
                                submitted[i])
                                .count());
        aborts += plan.stats.boundAborts;
        identical = identical && plan.value == refs[i].value &&
                    plan.strategy == refs[i].strategy;
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    allIdentical = allIdentical && identical;

    const double totalMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    char mode[32];
    std::snprintf(mode, sizeof(mode), "shards=%zu", shards);
    std::printf("%-10s %-9zu %-10.1f %-12.1f %-9.1f %-9.1f %-9zu %-9s\n",
                mode, n, totalMs,
                1000.0 * static_cast<double>(n) / totalMs,
                percentile(latencies, 0.50), percentile(latencies, 0.95),
                aborts, identical ? "yes" : "NO!");
  }
  std::printf("\n");
  return allIdentical;
}

/// E11: multi-host routing — two waves (cold, then warm repeats) of the
/// 18-unique-request workload through a PlanRouter over 1 vs 3
/// PlanServiceHosts, each a full socket host over its own engine. The
/// warmhits column counts wave-2 requests served wholesale by the far
/// side's full-result caches (resultCacheHits crossing the wire back).
/// Returns false on any divergence from the serial reference.
[[nodiscard]] bool printMultiHostTable(
    const std::vector<PlanRequest>& unique,
    const std::vector<OptimizedPlan>& refs) {
  constexpr std::size_t kWaves = 2;
  std::printf("E11: multi-host routing (PlanRouter), %s engines\n",
              g_serial ? "serial" : "pooled");
  std::printf("%-10s %-9s %-10s %-12s %-9s %-9s %-9s %-10s %-9s\n", "mode",
              "requests", "total[ms]", "thruput[r/s]", "p50[ms]", "p95[ms]",
              "warmhits", "failovers", "identical");

  bool allIdentical = true;
  for (const std::size_t hostCount : {std::size_t{1}, std::size_t{3}}) {
    std::vector<std::unique_ptr<PlanServiceHost>> hosts;
    RouterConfig rc;
    for (std::size_t h = 0; h < hostCount; ++h) {
      ServiceHostConfig hc;
      hc.serverConfig.engineConfig.threads = g_serial ? std::size_t{1} : 0;
      hc.serverConfig.maxBatch = 8;
      hc.serverConfig.drainThreads = g_serial ? 1 : 2;
      hosts.push_back(std::make_unique<PlanServiceHost>(hc));
      rc.hosts.push_back(RouterHost{"127.0.0.1", hosts.back()->port()});
    }
    PlanRouter router{rc};

    const std::size_t n = unique.size() * kWaves;
    std::vector<double> latencies;
    latencies.reserve(n);
    std::size_t warmHits = 0;
    bool identical = true;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t wave = 0; wave < kWaves; ++wave) {
      std::vector<std::future<OptimizedPlan>> futures;
      std::vector<std::chrono::steady_clock::time_point> submitted;
      futures.reserve(unique.size());
      submitted.reserve(unique.size());
      for (const auto& r : unique) {
        submitted.push_back(std::chrono::steady_clock::now());
        futures.push_back(router.submit(r));
      }
      for (std::size_t i = 0; i < futures.size(); ++i) {
        const auto plan = futures[i].get();
        latencies.push_back(std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() -
                                submitted[i])
                                .count());
        warmHits += plan.stats.resultCacheHits;
        identical = identical && plan.value == refs[i].value &&
                    plan.strategy == refs[i].strategy;
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    allIdentical = allIdentical && identical;

    const double totalMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    char mode[32];
    std::snprintf(mode, sizeof(mode), "hosts=%zu", hostCount);
    std::printf("%-10s %-9zu %-10.1f %-12.1f %-9.1f %-9.1f %-9zu %-10zu "
                "%-9s\n",
                mode, n, totalMs,
                1000.0 * static_cast<double>(n) / totalMs,
                percentile(latencies, 0.50), percentile(latencies, 0.95),
                warmHits, router.stats().failovers,
                identical ? "yes" : "NO!");
  }
  std::printf("\n");
  return allIdentical;
}

void BM_OptimizeBatch(benchmark::State& state) {
  const auto total = static_cast<std::size_t>(state.range(0));
  const auto reqs = mixedWorkload(/*apps=*/2, total);
  const EngineConfig cfg{.threads = g_serial ? std::size_t{1} : 0};
  for (auto _ : state) {
    PlanEngine engine{cfg};
    auto out = engine.optimizeBatch(reqs);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(total));
}
BENCHMARK(BM_OptimizeBatch)->Arg(12)->Arg(36)->Unit(benchmark::kMillisecond);

void BM_WarmCacheOptimize(benchmark::State& state) {
  // Steady-state serving: the same request against a warm long-lived
  // engine — since PR 3 that is a wholesale full-result-cache hit.
  const auto reqs = mixedWorkload(/*apps=*/1, 6);
  const EngineConfig cfg{.threads = g_serial ? std::size_t{1} : 0};
  PlanEngine engine{cfg};
  (void)engine.optimizeBatch(reqs);
  std::size_t i = 0;
  for (auto _ : state) {
    auto r = engine.optimize(reqs[i++ % reqs.size()]);
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_WarmCacheOptimize)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  g_serial = fswbench::stripFlag(argc, argv, "--serial");
  const bool batchIdentical = printServingTable();
  const bool asyncIdentical = printAsyncServingTable();

  // E10 and E11 gate every wave against one full serial reference of the
  // shared 18-unique-request workload (computed once — it dominates the
  // reference cost).
  const auto unique18 = mixedWorkload(/*apps=*/3, /*total=*/18);
  std::vector<OptimizedPlan> refs18;
  refs18.reserve(unique18.size());
  for (const auto& r : unique18) {
    OptimizerOptions serial = r.options;
    serial.threads = 1;
    refs18.push_back(optimizePlan(r.app, r.model, r.objective, serial));
  }
  const bool shardedIdentical = printShardedServingTable(unique18, refs18);
  const bool multiHostIdentical = printMultiHostTable(unique18, refs18);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return batchIdentical && asyncIdentical && shardedIdentical &&
                 multiHostIdentical
             ? 0
             : 1;
}
