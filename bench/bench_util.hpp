// Shared scaffolding for the benchmark mains.
#pragma once

#include <cstring>

namespace fswbench {

/// Removes `flag` from argv (so benchmark::Initialize never sees it) and
/// returns whether it was present.
inline bool stripFlag(int& argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      return true;
    }
  }
  return false;
}

/// Removes `flag <value>` from argv and returns the value (nullptr when the
/// flag is absent or has no following value).
inline const char* stripValueFlag(int& argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      const char* value = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      return value;
    }
  }
  return nullptr;
}

}  // namespace fswbench
