// E2/E3/E4 — the three counter-examples of Appendix B as measurable rows.
//
//   E2 (B.1, Fig 4): comm-blind optimal plan vs comm-aware plan, OVERLAP.
//   E3 (B.2, Fig 5): multi-port vs one-port latency.
//   E4 (B.3, Fig 6): multi-port vs one-port-overlap period.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/core/cost_model.hpp"
#include "src/opt/chain.hpp"
#include "src/sched/inorder.hpp"
#include "src/sched/outorder.hpp"
#include "src/sched/overlap.hpp"
#include "src/workload/paper_instances.hpp"

namespace {

using namespace fsw;

void printB1() {
  const auto pi = counterexampleB1();
  const auto chain = counterexampleB1ChainGraph();
  std::printf("E2: counter-example B.1 (202 services)\n");
  std::printf("%-28s %-14s %-14s\n", "plan", "no-comm period", "OVERLAP period");
  std::printf("%-28s %-14.4f %-14.4f   (paper: 100 / ~200)\n",
              "chain (no-comm optimal)", noCommPeriodValue(pi.app, chain),
              overlapPeriodSchedule(pi.app, chain).period());
  std::printf("%-28s %-14.4f %-14.4f   (paper: >100 / 100)\n",
              "two stars (Fig 4)", noCommPeriodValue(pi.app, pi.graph),
              overlapPeriodSchedule(pi.app, pi.graph).period());
  std::printf("\n");
}

void printB2() {
  const auto pi = counterexampleB2();
  OrchestrationOptions opt;
  opt.exactCap = 2000;
  opt.localSearchIters = 200;
  const auto onePort = oneportOrchestrateLatency(pi.app, pi.graph, opt);
  const auto fluid = overlapLatencyFluid(pi.app, pi.graph);
  std::printf("E3: counter-example B.2 (12 services, latency)\n");
  std::printf("%-28s %-12s\n", "schedule class", "latency");
  std::printf("%-28s %-12.4f   (paper: 20)\n", "multi-port (fluid)",
              fluid.latency());
  std::printf("%-28s %-12.4f   (paper: > 20)\n", "one-port (best found)",
              onePort.value);
  std::printf("\n");
}

void printB3() {
  const auto pi = counterexampleB3();
  const auto multi = overlapPeriodSchedule(pi.app, pi.graph);
  OutorderOptions opt;
  opt.restarts = 48;
  opt.repairIters = 600;
  opt.seed = 3;
  const bool at12 =
      onePortOverlapRepairAtLambda(pi.app, pi.graph, 12.0, opt).has_value();
  const auto best = onePortOverlapOrchestratePeriod(pi.app, pi.graph, opt);
  std::printf("E4: counter-example B.3 (8 services, period)\n");
  std::printf("%-28s %-12s\n", "schedule class", "period");
  std::printf("%-28s %-12.4f   (paper: 12)\n", "multi-port", multi.period());
  std::printf("%-28s %-12s   (paper: infeasible)\n", "one-port at 12",
              at12 ? "FEASIBLE?!" : "infeasible");
  std::printf("%-28s %-12.4f   (paper: > 12)\n", "one-port (best found)",
              best.value);
  std::printf("\n");
}

void BM_B1OverlapSchedule(benchmark::State& state) {
  const auto pi = counterexampleB1();
  for (auto _ : state) {
    auto ol = overlapPeriodSchedule(pi.app, pi.graph);
    benchmark::DoNotOptimize(ol.period());
  }
}
BENCHMARK(BM_B1OverlapSchedule);

void BM_B2FluidLatency(benchmark::State& state) {
  const auto pi = counterexampleB2();
  for (auto _ : state) {
    auto ol = overlapLatencyFluid(pi.app, pi.graph);
    benchmark::DoNotOptimize(ol.latency());
  }
}
BENCHMARK(BM_B2FluidLatency);

void BM_B3OnePortRepairAt13(benchmark::State& state) {
  const auto pi = counterexampleB3();
  OutorderOptions opt;
  opt.restarts = 16;
  opt.seed = 11;
  for (auto _ : state) {
    auto ol = onePortOverlapRepairAtLambda(pi.app, pi.graph, 13.0, opt);
    benchmark::DoNotOptimize(ol.has_value());
  }
}
BENCHMARK(BM_B3OnePortRepairAt13);

}  // namespace

int main(int argc, char** argv) {
  printB1();
  printB2();
  printB3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
