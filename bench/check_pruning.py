#!/usr/bin/env python3
"""Gate the OUTORDER incumbent-pruning counters against a baseline.

Usage: check_pruning.py <baseline.json> <current.json>

Both files are the flat {"<case>_{seed_aborts,repair_aborts,pruned,
identical}": N} object that `bench_orchestration --pruning_json <path>`
emits (E5d: each portfolio of candidate graphs re-solved under a running
incumbent, winners checked bit-identical to the unbounded reference).

The counters are deterministic — the bisection trajectory and the derived
seed bound are pure functions of the instance and options, and the bench
verifies serial and pooled runs produce byte-identical counts — so no
tolerance applies. Fails (exit 1) when:
  * any `_identical` flag is 0 (a bounded winner diverged — unsound), or
    no identity flags were emitted at all;
  * the total seed-phase aborts fall below the baseline total (the floor:
    pruning silently stopped firing);
  * a baseline key disappeared from the current run.
Counts above baseline pass (stronger pruning); refresh the baseline to
lock them in.
"""

import sys

import check_baseline


def seed_total(data):
    return sum(v for k, v in data.items() if k.endswith("_seed_aborts"))


def main() -> int:
    args = check_baseline.make_parser(__doc__).parse_args()
    baseline, current = check_baseline.load_pair(args)

    failures = []

    def gate(key, base, cur):
        if key.endswith("_identical") and cur != 1:
            failures.append(f"{key}: bounded winner diverged from the "
                            f"unbounded reference (unsound pruning)")
            return "  <-- UNSOUND"
        return ""

    check_baseline.print_diff_table(baseline, current, key_header="counter",
                                    marker=gate)

    identity_keys = [k for k in current if k.endswith("_identical")]
    if not identity_keys:
        failures.append("the current run emitted no _identical flags")
    for key in identity_keys:
        if key not in baseline and current[key] != 1:
            failures.append(f"{key}: bounded winner diverged from the "
                            f"unbounded reference (unsound pruning)")

    base_seed = seed_total(baseline)
    cur_seed = seed_total(current)
    if base_seed <= 0:
        failures.append("baseline has no seed-phase aborts; nothing to "
                        "floor against")
    elif cur_seed < base_seed:
        failures.append(f"seed-phase aborts fell below the baseline floor "
                        f"({base_seed} -> {cur_seed}): incumbent pruning "
                        f"stopped firing")

    for key in sorted(set(baseline) - set(current)):
        failures.append(f"{key}: present in baseline but missing from the "
                        f"current run")

    return check_baseline.finish(
        failures, "pruning regression",
        f"winners identical everywhere; seed aborts {cur_seed} >= "
        f"baseline floor {base_seed}")


if __name__ == "__main__":
    sys.exit(main())
