// E8 — the cost of each communication model: orchestrated period ratios
// INORDER : OUTORDER : OVERLAP on the same execution graphs, across
// workload mixes (filter-heavy vs expander-heavy, cheap vs expensive
// services), plus the greedy runtime baselines from the simulator.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/core/cost_model.hpp"
#include "src/opt/bicriteria.hpp"
#include "src/sched/orchestrator.hpp"
#include "src/sim/greedy.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_instances.hpp"

namespace {

using namespace fsw;

OrchestratorOptions sweepOpts() {
  OrchestratorOptions opt;
  opt.order.exactCap = 200;
  opt.order.localSearchIters = 80;
  opt.outorder.restarts = 8;
  opt.outorder.bisectSteps = 6;
  return opt;
}

void printModelSweep() {
  std::printf("E8: mean period by model (10 random forests per mix, n = 6)\n");
  std::printf("%-18s %-10s %-10s %-10s %-12s %-12s\n", "mix", "OVERLAP",
              "OUTORDER", "INORDER", "greedy-IN", "greedy-OUT");
  struct Mix {
    const char* tag;
    double filterFraction;
    double costHi;
  };
  for (const Mix mix : {Mix{"filter-heavy", 0.9, 4.0},
                        Mix{"balanced", 0.5, 4.0},
                        Mix{"expander-heavy", 0.1, 4.0},
                        Mix{"expensive", 0.5, 16.0}}) {
    double sums[5] = {0, 0, 0, 0, 0};
    for (int trial = 0; trial < 10; ++trial) {
      Prng rng(8000 + trial);
      WorkloadSpec spec;
      spec.n = 6;
      spec.filterFraction = mix.filterFraction;
      spec.costHi = mix.costHi;
      const auto app = randomApplication(spec, rng);
      const auto g = randomForest(app, rng);
      const auto opts = sweepOpts();
      sums[0] += orchestrate(app, g, CommModel::Overlap, Objective::Period,
                             opts)
                     .result.value;
      const auto out = orchestrate(app, g, CommModel::OutOrder,
                                   Objective::Period, opts);
      sums[1] += out.result.value;
      const auto in = orchestrate(app, g, CommModel::InOrder,
                                  Objective::Period, opts);
      sums[2] += in.result.value;
      sums[3] += simulateGreedyInOrder(app, g, in.result.orders, 64)
                     .measuredPeriod;
      sums[4] += simulateGreedyOutOrder(app, g, 64).measuredPeriod;
    }
    std::printf("%-18s %-10.4f %-10.4f %-10.4f %-12.4f %-12.4f\n", mix.tag,
                sums[0] / 10, sums[1] / 10, sums[2] / 10, sums[3] / 10,
                sums[4] / 10);
  }
  std::printf("(expect OVERLAP <= OUTORDER <= INORDER <= greedy baselines)\n\n");

  std::printf("E8b: mean latency by model (10 random DAGs per mix, n = 7)\n");
  std::printf("%-18s %-10s %-10s\n", "mix", "one-port", "multi-port");
  for (const double ff : {0.9, 0.5, 0.1}) {
    double onePort = 0.0;
    double multi = 0.0;
    for (int trial = 0; trial < 10; ++trial) {
      Prng rng(8100 + trial);
      WorkloadSpec spec;
      spec.n = 7;
      spec.filterFraction = ff;
      const auto app = randomApplication(spec, rng);
      const auto g = randomLayeredDag(app, 3, 3, rng);
      const auto opts = sweepOpts();
      onePort += orchestrate(app, g, CommModel::InOrder, Objective::Latency,
                             opts)
                     .result.value;
      multi += orchestrate(app, g, CommModel::Overlap, Objective::Latency,
                           opts)
                   .result.value;
    }
    std::printf("filter=%-11.1f %-10.4f %-10.4f\n", ff, onePort / 10,
                multi / 10);
  }
  std::printf("\n");

  // The bi-criteria extension (the paper's stated future work): the
  // period/latency trade-off on the Section 2.3 graph under INORDER.
  std::printf(
      "E8c: period/latency Pareto front, Section 2.3 graph, INORDER\n");
  std::printf("%-12s %-12s %-20s\n", "period", "latency", "strategy");
  const auto pi = sec23Example();
  for (const auto& p :
       periodLatencyFrontForGraph(pi.app, pi.graph, CommModel::InOrder)) {
    std::printf("%-12.4f %-12.4f %-20s\n", p.period, p.latency,
                p.strategy.c_str());
  }
  std::printf("(the ASAP schedule at 23/3 already attains the optimal "
              "latency 21: no trade-off on this graph)\n\n");
}

void BM_PeriodOrchestration(benchmark::State& state) {
  const auto m = static_cast<CommModel>(state.range(0));
  Prng rng(8200);
  WorkloadSpec spec;
  spec.n = 6;
  const auto app = randomApplication(spec, rng);
  const auto g = randomForest(app, rng);
  const auto opts = sweepOpts();
  for (auto _ : state) {
    auto r = orchestrate(app, g, m, Objective::Period, opts);
    benchmark::DoNotOptimize(r.result.value);
  }
}
BENCHMARK(BM_PeriodOrchestration)->DenseRange(0, 2)->ArgNames({"model"});

void BM_LatencyOrchestration(benchmark::State& state) {
  const auto m = static_cast<CommModel>(state.range(0));
  Prng rng(8201);
  WorkloadSpec spec;
  spec.n = 7;
  const auto app = randomApplication(spec, rng);
  const auto g = randomLayeredDag(app, 3, 2, rng);
  const auto opts = sweepOpts();
  for (auto _ : state) {
    auto r = orchestrate(app, g, m, Objective::Latency, opts);
    benchmark::DoNotOptimize(r.result.value);
  }
}
BENCHMARK(BM_LatencyOrchestration)->DenseRange(0, 2)->ArgNames({"model"});

}  // namespace

int main(int argc, char** argv) {
  printModelSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
