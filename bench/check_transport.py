#!/usr/bin/env python3
"""Gate serving-transport latency against a checked-in baseline.

Usage: check_transport.py <baseline.json> <current.json> [--tolerance 0.15]

Both files are the flat {"<mode>_c<clients>_{p50_ms,p95_ms,ops_per_s}": N}
object that `bench_serving --transport_json <path>` emits (E13: concurrent
raw clients sweeping a warm store, epoll reactor vs thread-per-connection).

The gate is the reactor's p95 op latency at the HIGHEST client count the
run swept: timing rows are noisy (unlike the byte-exact wire sizes), so
only that one headline number gates, with a relative tolerance plus a
small absolute grace floor to keep sub-millisecond rows from flapping on
scheduler jitter. Everything else is printed for the trajectory artifact.
Fails (exit 1) on a gated regression or when the reactor's top row
disappeared from the current run (a sweep that silently shrank).
"""

import argparse
import json
import re
import sys

# Sub-ms p95s wobble by scheduler quantum; never fail inside this margin.
ABS_GRACE_MS = 0.25


def top_reactor_count(data):
    counts = [int(m.group(1)) for key in data
              if (m := re.fullmatch(r"reactor_c(\d+)_p95_ms", key))]
    return max(counts) if counts else None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional p95 growth over baseline "
                             "(default 0.15 = 15%%)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    print(f"{'metric':<26} {'baseline':>10} {'current':>10} {'delta':>8}")
    for key in sorted(set(baseline) | set(current)):
        base = baseline.get(key)
        cur = current.get(key)
        if base is None:
            print(f"{key:<26} {'(new)':>10} {cur:>10}")
        elif cur is None:
            print(f"{key:<26} {base:>10} {'(gone)':>10}")
        else:
            delta = (cur - base) / base if base else 0.0
            print(f"{key:<26} {base:>10} {cur:>10} {delta:>+8.1%}")

    base_top = top_reactor_count(baseline)
    cur_top = top_reactor_count(current)
    if base_top is None:
        print("\nno reactor p95 rows in the baseline; nothing to gate",
              file=sys.stderr)
        return 1
    if cur_top is None or cur_top < base_top:
        print(f"\ntransport regression: the current sweep lost the reactor "
              f"c{base_top} row (now tops out at c{cur_top})",
              file=sys.stderr)
        return 1

    key = f"reactor_c{base_top}_p95_ms"
    base = baseline[key]
    cur = current[key]
    ceiling = base * (1.0 + args.tolerance) + ABS_GRACE_MS
    if cur > ceiling:
        print(f"\ntransport regression: {key} {base} -> {cur} ms "
              f"(ceiling {ceiling:.3f} = +{args.tolerance:.0%} "
              f"+ {ABS_GRACE_MS} ms grace)", file=sys.stderr)
        return 1
    print(f"\n{key} within tolerance of baseline "
          f"({cur} <= {ceiling:.3f} ms)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
