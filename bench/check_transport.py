#!/usr/bin/env python3
"""Gate serving-transport latency against a checked-in baseline.

Usage: check_transport.py <baseline.json> <current.json> [--tolerance 0.15]

Both files are the flat {"<mode>_c<clients>_{p50_ms,p95_ms,ops_per_s}": N}
object that `bench_serving --transport_json <path>` emits (E13: concurrent
raw clients sweeping a warm store, epoll reactor vs thread-per-connection).

The gate is the reactor's p95 op latency at the HIGHEST client count the
run swept: timing rows are noisy (unlike the byte-exact wire sizes), so
only that one headline number gates, with a relative tolerance plus a
small absolute grace floor to keep sub-millisecond rows from flapping on
scheduler jitter. Everything else is printed for the trajectory artifact.
Fails (exit 1) on a gated regression or when the reactor's top row
disappeared from the current run (a sweep that silently shrank).
"""

import re
import sys

import check_baseline

# Sub-ms p95s wobble by scheduler quantum; never fail inside this margin.
ABS_GRACE_MS = 0.25


def top_reactor_count(data):
    counts = [int(m.group(1)) for key in data
              if (m := re.fullmatch(r"reactor_c(\d+)_p95_ms", key))]
    return max(counts) if counts else None


def main() -> int:
    args = check_baseline.make_parser(__doc__, tolerance=0.15).parse_args()
    baseline, current = check_baseline.load_pair(args)

    check_baseline.print_diff_table(baseline, current, key_width=26)

    failures = []
    base_top = top_reactor_count(baseline)
    cur_top = top_reactor_count(current)
    if base_top is None:
        failures.append("no reactor p95 rows in the baseline; nothing "
                        "to gate")
        return check_baseline.finish(failures, "transport regression", "")
    if cur_top is None or cur_top < base_top:
        failures.append(f"the current sweep lost the reactor c{base_top} "
                        f"row (now tops out at c{cur_top})")
        return check_baseline.finish(failures, "transport regression", "")

    key = f"reactor_c{base_top}_p95_ms"
    base = baseline[key]
    cur = current[key]
    ceiling = base * (1.0 + args.tolerance) + ABS_GRACE_MS
    if cur > ceiling:
        failures.append(f"{key} {base} -> {cur} ms (ceiling {ceiling:.3f} "
                        f"= +{args.tolerance:.0%} + {ABS_GRACE_MS} ms "
                        f"grace)")
    return check_baseline.finish(
        failures, "transport regression",
        f"{key} within tolerance of baseline ({cur} <= {ceiling:.3f} ms)")


if __name__ == "__main__":
    sys.exit(main())
