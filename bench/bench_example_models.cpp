// E1 — Section 2.3 / Fig 1: the worked example. Regenerates the paper's
// per-model period and latency table and times the orchestrators that
// produce it.
//
// Paper values: latency 21 (all models); period 4 (OVERLAP), 7 (OUTORDER),
// 23/3 ~ 7.667 (INORDER).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/core/cost_model.hpp"
#include "src/sched/orchestrator.hpp"
#include "src/sim/replay.hpp"
#include "src/workload/paper_instances.hpp"

namespace {

using namespace fsw;

void printTable() {
  const auto pi = sec23Example();
  std::printf("E1: Section 2.3 example (5 services, cost 4, sigma 1)\n");
  std::printf("%-10s %-12s %-12s %-12s %-12s\n", "model", "period", "paper",
              "latency", "paper");
  const double paperPeriod[3] = {4.0, 7.0, 23.0 / 3.0};
  int row = 0;
  for (const CommModel m : kAllModels) {
    const auto period = orchestrate(pi.app, pi.graph, m, Objective::Period);
    const auto latency = orchestrate(pi.app, pi.graph, m, Objective::Latency);
    const auto sim =
        replayOperationList(pi.app, pi.graph, period.result.ol, m, 64);
    std::printf("%-10s %-12.4f %-12.4f %-12.4f %-12.4f   (sim %.4f %s)\n",
                name(m).data(), period.result.value, paperPeriod[row],
                latency.result.value, 21.0, sim.measuredPeriod,
                sim.ok ? "ok" : "VIOLATION");
    ++row;
  }
  std::printf("\n");
}

void BM_OverlapPeriodSec23(benchmark::State& state) {
  const auto pi = sec23Example();
  for (auto _ : state) {
    auto r = orchestrate(pi.app, pi.graph, CommModel::Overlap,
                         Objective::Period);
    benchmark::DoNotOptimize(r.result.value);
  }
}
BENCHMARK(BM_OverlapPeriodSec23);

void BM_InorderPeriodSec23(benchmark::State& state) {
  const auto pi = sec23Example();
  for (auto _ : state) {
    auto r = orchestrate(pi.app, pi.graph, CommModel::InOrder,
                         Objective::Period);
    benchmark::DoNotOptimize(r.result.value);
  }
}
BENCHMARK(BM_InorderPeriodSec23);

void BM_OutorderPeriodSec23(benchmark::State& state) {
  const auto pi = sec23Example();
  for (auto _ : state) {
    auto r = orchestrate(pi.app, pi.graph, CommModel::OutOrder,
                         Objective::Period);
    benchmark::DoNotOptimize(r.result.value);
  }
}
BENCHMARK(BM_OutorderPeriodSec23);

void BM_LatencySec23(benchmark::State& state) {
  const auto pi = sec23Example();
  for (auto _ : state) {
    auto r = orchestrate(pi.app, pi.graph, CommModel::InOrder,
                         Objective::Latency);
    benchmark::DoNotOptimize(r.result.value);
  }
}
BENCHMARK(BM_LatencySec23);

}  // namespace

int main(int argc, char** argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
