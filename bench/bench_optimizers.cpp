// E7 — MinPeriod / MinLatency (Theorems 2 and 4): exact forest search vs
// the heuristic portfolio on random instances — solution quality at small n
// (where exactness is affordable, per Prop 4's forest structure) and wall
// time as n grows.
//
// E7c measures the parallel plan-search engine: the same optimizePlan call
// with the shared thread pool vs fully serial (`--serial` forces every
// registered benchmark into serial mode so two runs of this binary can be
// compared externally; without the flag the table below times both modes
// in-process and checks the winners are identical).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/bench_util.hpp"
#include "src/core/cost_model.hpp"
#include "src/opt/forest_search.hpp"
#include "src/opt/heuristics.hpp"
#include "src/opt/optimizer.hpp"
#include "src/serve/plan_engine.hpp"
#include "src/workload/generator.hpp"

namespace {

using namespace fsw;

bool g_serial = false;  ///< --serial: force every benchmark serial

OptimizerOptions engineOptions(std::size_t n) {
  OptimizerOptions opt;
  opt.exactForestMaxN = n <= 5 ? 5 : 0;
  opt.heuristics.iterations = 800;
  opt.orchestrator.order.exactCap = 100;
  opt.orchestrator.order.localSearchIters = 120;
  opt.orchestrator.outorder.restarts = 8;
  opt.threads = g_serial ? 1 : 0;
  return opt;
}

void printQualityTable() {
  std::printf("E7: heuristic vs exact forest search, OVERLAP MinPeriod\n");
  std::printf("%-6s %-10s %-10s %-10s %-10s\n", "trial", "exact", "greedy",
              "hillclimb", "anneal");
  for (int trial = 0; trial < 6; ++trial) {
    Prng rng(7100 + trial);
    WorkloadSpec spec;
    spec.n = 6;
    const auto app = randomApplication(spec, rng);
    const auto exact = exactForestMinPeriod(app, CommModel::Overlap);
    const auto g1 = greedyForest(app, CommModel::Overlap, Objective::Period);
    const auto g2 =
        hillClimbForest(app, CommModel::Overlap, Objective::Period, g1);
    HeuristicOptions ho;
    ho.seed = 7100 + trial;
    const auto g3 =
        annealForest(app, CommModel::Overlap, Objective::Period, ho);
    const auto score = [&](const ExecutionGraph& g) {
      return surrogateScore(app, g, CommModel::Overlap, Objective::Period);
    };
    std::printf("%-6d %-10.4f %-10.4f %-10.4f %-10.4f\n", trial, exact.value,
                score(g1), score(g2), score(g3));
  }
  std::printf("\n");
  std::printf("E7b: MinLatency (Algorithm 1 scoring on forests)\n");
  std::printf("%-6s %-10s %-10s %-10s\n", "trial", "exact", "greedy",
              "anneal");
  for (int trial = 0; trial < 6; ++trial) {
    Prng rng(7200 + trial);
    WorkloadSpec spec;
    spec.n = 6;
    const auto app = randomApplication(spec, rng);
    const auto exact = exactForestMinLatency(app);
    const auto g1 = greedyForest(app, CommModel::InOrder, Objective::Latency);
    HeuristicOptions ho;
    ho.seed = 7200 + trial;
    const auto g3 =
        annealForest(app, CommModel::InOrder, Objective::Latency, ho);
    const auto score = [&](const ExecutionGraph& g) {
      return surrogateScore(app, g, CommModel::InOrder, Objective::Latency);
    };
    std::printf("%-6d %-10.4f %-10.4f %-10.4f\n", trial, exact.value,
                score(g1), score(g3));
  }
  std::printf("\n");
}

/// E7c: engine wall-clock, pooled vs serial, with a winner-identity check.
/// Returns false when any pooled winner diverged from the serial one, so
/// CI can gate on the exit code.
[[nodiscard]] bool printEngineSpeedupTable() {
  bool allIdentical = true;
  std::printf("E7c: parallel engine speedup (%u hardware threads)\n",
              std::thread::hardware_concurrency());
  std::printf("%-4s %-10s %-12s %-12s %-9s %-9s\n", "n", "model",
              "serial[ms]", "pooled[ms]", "speedup", "identical");
  for (const std::size_t n : {12u, 16u}) {
    Prng rng(7400 + n);
    WorkloadSpec spec;
    spec.n = n;
    const auto app = randomApplication(spec, rng);
    for (const CommModel m : {CommModel::Overlap, CommModel::InOrder}) {
      OptimizerOptions serial = engineOptions(n);
      serial.threads = 1;
      OptimizerOptions pooled = engineOptions(n);
      pooled.threads = 0;

      // Dedicated cold engines per mode: the process-wide engine's
      // full-result cache would otherwise serve the second call from the
      // first one's winner, timing a lookup and checking it against
      // itself.
      PlanEngine serialEngine{
          EngineConfig{.threads = 1, .cacheFullResults = false}};
      PlanEngine pooledEngine{
          EngineConfig{.threads = 0, .cacheFullResults = false}};

      const auto t0 = std::chrono::steady_clock::now();
      const auto rs = serialEngine.optimize(app, m, Objective::Period, serial);
      const auto t1 = std::chrono::steady_clock::now();
      const auto rp = pooledEngine.optimize(app, m, Objective::Period, pooled);
      const auto t2 = std::chrono::steady_clock::now();

      const double serialMs =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      const double pooledMs =
          std::chrono::duration<double, std::milli>(t2 - t1).count();
      const bool identical =
          rs.value == rp.value && rs.strategy == rp.strategy;
      allIdentical = allIdentical && identical;
      std::printf("%-4zu %-10s %-12.1f %-12.1f %-9.2fx %-9s\n", n,
                  name(m).data(), serialMs, pooledMs, serialMs / pooledMs,
                  identical ? "yes" : "NO!");
    }
  }
  std::printf("\n");
  return allIdentical;
}

void BM_ExactForestSearch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(7300);
  WorkloadSpec spec;
  spec.n = n;
  const auto app = randomApplication(spec, rng);
  for (auto _ : state) {
    auto r = exactForestMinPeriod(app, CommModel::Overlap);
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_ExactForestSearch)->DenseRange(3, 7);

void BM_GreedyForest(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(7301);
  WorkloadSpec spec;
  spec.n = n;
  const auto app = randomApplication(spec, rng);
  for (auto _ : state) {
    auto g = greedyForest(app, CommModel::Overlap, Objective::Period);
    benchmark::DoNotOptimize(g.size());
  }
}
BENCHMARK(BM_GreedyForest)->RangeMultiplier(2)->Range(4, 32);

void BM_AnnealForest(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(7302);
  WorkloadSpec spec;
  spec.n = n;
  const auto app = randomApplication(spec, rng);
  HeuristicOptions ho;
  ho.iterations = 1000;
  ho.restarts = 1;
  for (auto _ : state) {
    auto g = annealForest(app, CommModel::Overlap, Objective::Period, ho);
    benchmark::DoNotOptimize(g.size());
  }
}
BENCHMARK(BM_AnnealForest)->RangeMultiplier(2)->Range(4, 32);

void BM_FullOptimizer(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(7303);
  WorkloadSpec spec;
  spec.n = n;
  const auto app = randomApplication(spec, rng);
  OptimizerOptions opt = engineOptions(n);
  opt.exactForestMaxN = 5;
  opt.orchestrator.outorder.restarts = 4;
  // Full-result caching off: every iteration must run the whole pipeline
  // (the warm steady-state path is BM_WarmCacheOptimize in bench_serving).
  PlanEngine engine{EngineConfig{.cacheFullResults = false}};
  for (auto _ : state) {
    auto r = engine.optimize(app, CommModel::Overlap, Objective::Period, opt);
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_FullOptimizer)->DenseRange(4, 8, 2)->Arg(12)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  g_serial = fswbench::stripFlag(argc, argv, "--serial");
  printQualityTable();
  bool identical = true;
  if (g_serial) {
    std::printf("(--serial: engine pool disabled for all benchmarks)\n\n");
  } else {
    identical = printEngineSpeedupTable();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return identical ? 0 : 1;
}
