// E7 — MinPeriod / MinLatency (Theorems 2 and 4): exact forest search vs
// the heuristic portfolio on random instances — solution quality at small n
// (where exactness is affordable, per Prop 4's forest structure) and wall
// time as n grows.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/core/cost_model.hpp"
#include "src/opt/forest_search.hpp"
#include "src/opt/heuristics.hpp"
#include "src/opt/optimizer.hpp"
#include "src/workload/generator.hpp"

namespace {

using namespace fsw;

void printQualityTable() {
  std::printf("E7: heuristic vs exact forest search, OVERLAP MinPeriod\n");
  std::printf("%-6s %-10s %-10s %-10s %-10s\n", "trial", "exact", "greedy",
              "hillclimb", "anneal");
  for (int trial = 0; trial < 6; ++trial) {
    Prng rng(7100 + trial);
    WorkloadSpec spec;
    spec.n = 6;
    const auto app = randomApplication(spec, rng);
    const auto exact = exactForestMinPeriod(app, CommModel::Overlap);
    const auto g1 = greedyForest(app, CommModel::Overlap, Objective::Period);
    const auto g2 =
        hillClimbForest(app, CommModel::Overlap, Objective::Period, g1);
    HeuristicOptions ho;
    ho.seed = 7100 + trial;
    const auto g3 =
        annealForest(app, CommModel::Overlap, Objective::Period, ho);
    const auto score = [&](const ExecutionGraph& g) {
      return surrogateScore(app, g, CommModel::Overlap, Objective::Period);
    };
    std::printf("%-6d %-10.4f %-10.4f %-10.4f %-10.4f\n", trial, exact.value,
                score(g1), score(g2), score(g3));
  }
  std::printf("\n");
  std::printf("E7b: MinLatency (Algorithm 1 scoring on forests)\n");
  std::printf("%-6s %-10s %-10s %-10s\n", "trial", "exact", "greedy",
              "anneal");
  for (int trial = 0; trial < 6; ++trial) {
    Prng rng(7200 + trial);
    WorkloadSpec spec;
    spec.n = 6;
    const auto app = randomApplication(spec, rng);
    const auto exact = exactForestMinLatency(app);
    const auto g1 = greedyForest(app, CommModel::InOrder, Objective::Latency);
    HeuristicOptions ho;
    ho.seed = 7200 + trial;
    const auto g3 =
        annealForest(app, CommModel::InOrder, Objective::Latency, ho);
    const auto score = [&](const ExecutionGraph& g) {
      return surrogateScore(app, g, CommModel::InOrder, Objective::Latency);
    };
    std::printf("%-6d %-10.4f %-10.4f %-10.4f\n", trial, exact.value,
                score(g1), score(g3));
  }
  std::printf("\n");
}

void BM_ExactForestSearch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(7300);
  WorkloadSpec spec;
  spec.n = n;
  const auto app = randomApplication(spec, rng);
  for (auto _ : state) {
    auto r = exactForestMinPeriod(app, CommModel::Overlap);
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_ExactForestSearch)->DenseRange(3, 7);

void BM_GreedyForest(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(7301);
  WorkloadSpec spec;
  spec.n = n;
  const auto app = randomApplication(spec, rng);
  for (auto _ : state) {
    auto g = greedyForest(app, CommModel::Overlap, Objective::Period);
    benchmark::DoNotOptimize(g.size());
  }
}
BENCHMARK(BM_GreedyForest)->RangeMultiplier(2)->Range(4, 32);

void BM_AnnealForest(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(7302);
  WorkloadSpec spec;
  spec.n = n;
  const auto app = randomApplication(spec, rng);
  HeuristicOptions ho;
  ho.iterations = 1000;
  ho.restarts = 1;
  for (auto _ : state) {
    auto g = annealForest(app, CommModel::Overlap, Objective::Period, ho);
    benchmark::DoNotOptimize(g.size());
  }
}
BENCHMARK(BM_AnnealForest)->RangeMultiplier(2)->Range(4, 32);

void BM_FullOptimizer(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(7303);
  WorkloadSpec spec;
  spec.n = n;
  const auto app = randomApplication(spec, rng);
  OptimizerOptions opt;
  opt.exactForestMaxN = 5;
  opt.heuristics.iterations = 800;
  opt.orchestrator.order.exactCap = 100;
  opt.orchestrator.outorder.restarts = 4;
  for (auto _ : state) {
    auto r = optimizePlan(app, CommModel::Overlap, Objective::Period, opt);
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_FullOptimizer)->DenseRange(4, 8, 2);

}  // namespace

int main(int argc, char** argv) {
  printQualityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
