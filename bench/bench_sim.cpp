// E10 — the simulation substrate itself: replayer and greedy-simulator
// throughput, and the "measured = analytic" identity on valid operation
// lists (printed as a check table).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/sched/orchestrator.hpp"
#include "src/sim/greedy.hpp"
#include "src/sim/replay.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_instances.hpp"

namespace {

using namespace fsw;

void printMeasuredVsAnalytic() {
  std::printf("E10: replayed (measured) period vs analytic lambda\n");
  std::printf("%-8s %-10s %-12s %-12s %-8s\n", "n", "model", "analytic",
              "measured", "ok");
  for (const std::size_t n : {6u, 10u, 14u}) {
    Prng rng(1000 + n);
    WorkloadSpec spec;
    spec.n = n;
    const auto app = randomApplication(spec, rng);
    const auto g = randomForest(app, rng);
    for (const CommModel m : kAllModels) {
      OrchestratorOptions opt;
      opt.order.exactCap = 100;
      opt.order.localSearchIters = 40;
      opt.outorder.restarts = 4;
      const auto orch = orchestrate(app, g, m, Objective::Period, opt);
      const auto sim = replayOperationList(app, g, orch.result.ol, m, 48);
      std::printf("%-8zu %-10s %-12.5f %-12.5f %-8s\n", n, name(m).data(),
                  orch.result.value, sim.measuredPeriod,
                  sim.ok ? "yes" : "NO");
    }
  }
  std::printf("\n");
}

void BM_ReplayOperationList(benchmark::State& state) {
  const auto pi = sec23Example();
  const auto orch = orchestrate(pi.app, pi.graph, CommModel::Overlap,
                                Objective::Period);
  const auto datasets = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto sim = replayOperationList(pi.app, pi.graph, orch.result.ol,
                                   CommModel::Overlap, datasets);
    benchmark::DoNotOptimize(sim.measuredPeriod);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(datasets));
}
BENCHMARK(BM_ReplayOperationList)->RangeMultiplier(4)->Range(16, 1024);

void BM_GreedyInOrderSim(benchmark::State& state) {
  Prng rng(1001);
  WorkloadSpec spec;
  spec.n = static_cast<std::size_t>(state.range(0));
  const auto app = randomApplication(spec, rng);
  const auto g = randomForest(app, rng);
  const auto po = PortOrders::canonical(g);
  for (auto _ : state) {
    auto sim = simulateGreedyInOrder(app, g, po, 64);
    benchmark::DoNotOptimize(sim.measuredPeriod);
  }
}
BENCHMARK(BM_GreedyInOrderSim)->RangeMultiplier(2)->Range(4, 32);

void BM_GreedyOutOrderSim(benchmark::State& state) {
  Prng rng(1002);
  WorkloadSpec spec;
  spec.n = static_cast<std::size_t>(state.range(0));
  const auto app = randomApplication(spec, rng);
  const auto g = randomForest(app, rng);
  for (auto _ : state) {
    auto sim = simulateGreedyOutOrder(app, g, 64);
    benchmark::DoNotOptimize(sim.measuredPeriod);
  }
}
BENCHMARK(BM_GreedyOutOrderSim)->RangeMultiplier(2)->Range(4, 16);

}  // namespace

int main(int argc, char** argv) {
  printMeasuredVsAnalytic();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
