"""Shared plumbing for the bench baseline checkers.

Every checker in bench/ compares a flat {"key": number} JSON emitted by a
bench binary against a checked-in baseline under bench/baselines/, prints
a sorted diff table for the trajectory artifact, and exits nonzero on a
gated regression. The loading, CLI shape, table printing and failure
reporting live here; each checker keeps only its gate policy (what is
noisy, what is exact, what must never shrink).
"""

import argparse
import json
import sys


def make_parser(doc, tolerance=None):
    """The common CLI: <baseline.json> <current.json> [--tolerance X].

    The --tolerance flag is only added when the checker has a relative
    gate (pass its default); exact-count checkers omit it.
    """
    parser = argparse.ArgumentParser(description=doc)
    parser.add_argument("baseline")
    parser.add_argument("current")
    if tolerance is not None:
        parser.add_argument(
            "--tolerance", type=float, default=tolerance,
            help="allowed fractional growth over baseline "
                 f"(default {tolerance} = {tolerance:.0%})")
    return parser


def load_pair(args):
    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)
    return baseline, current


def print_diff_table(baseline, current, key_header="metric", key_width=28,
                     val_width=10, marker=None):
    """Prints the union of both key sets, sorted, with relative deltas.

    Keys only in the current run print as (new); keys that vanished print
    as (gone) — whether either fails is the caller's gate policy.
    `marker(key, base, cur)` may return a suffix (e.g. "  <-- REGRESSION")
    for rows present on both sides.
    """
    print(f"{key_header:<{key_width}} {'baseline':>{val_width}} "
          f"{'current':>{val_width}} {'delta':>8}")
    for key in sorted(set(baseline) | set(current)):
        base = baseline.get(key)
        cur = current.get(key)
        if base is None:
            print(f"{key:<{key_width}} {'(new)':>{val_width}} "
                  f"{cur:>{val_width}}")
        elif cur is None:
            print(f"{key:<{key_width}} {base:>{val_width}} "
                  f"{'(gone)':>{val_width}}")
        else:
            delta = (cur - base) / base if base else 0.0
            note = marker(key, base, cur) if marker else ""
            print(f"{key:<{key_width}} {base:>{val_width}} "
                  f"{cur:>{val_width}} {delta:>+8.1%}{note}")


def finish(failures, label, ok_message):
    """Prints the verdict and returns the process exit code."""
    if failures:
        print(f"\n{label}:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\n{ok_message}")
    return 0
