"""Shared plumbing for the bench baseline checkers.

Every checker in bench/ compares a flat {"key": number} JSON emitted by a
bench binary against a checked-in baseline under bench/baselines/, prints
a sorted diff table for the trajectory artifact, and exits nonzero on a
gated regression. The loading, CLI shape, table printing and failure
reporting live here; each checker keeps only its gate policy (what is
noisy, what is exact, what must never shrink).
"""

import argparse
import json
import sys


def make_parser(doc, tolerance=None):
    """The common CLI: <baseline.json> <current.json> [--tolerance X].

    The --tolerance flag is only added when the checker has a relative
    gate (pass its default); exact-count checkers omit it.
    """
    parser = argparse.ArgumentParser(description=doc)
    parser.add_argument("baseline")
    parser.add_argument("current")
    if tolerance is not None:
        parser.add_argument(
            "--tolerance", type=float, default=tolerance,
            help="allowed fractional growth over baseline "
                 f"(default {tolerance} = {tolerance:.0%})")
    return parser


#: Non-numeric provenance keys stamped into every export: popped before
#: diffing (they are not metrics) and cross-checked between the two files.
META_KEYS = ("schema", "bench_version")


def split_meta(data):
    """Pops and returns the meta stamp, leaving only metric keys behind."""
    return {key: data.pop(key) for key in META_KEYS if key in data}


def check_meta(base_meta, cur_meta):
    """Dies with a clear message when the stamps contradict each other.

    A file predating the stamps (no meta keys at all) is tolerated — only
    an actual mismatch is a hard error, so stamping rolls out without
    invalidating every baseline at once.
    """
    for field in META_KEYS:
        base = base_meta.get(field)
        cur = cur_meta.get(field)
        if base is not None and cur is not None and base != cur:
            print(f"baseline/export mismatch: {field} is {base!r} in the "
                  f"baseline but {cur!r} in the current export — these "
                  "files were produced by different bench formats and "
                  "cannot be compared. Regenerate the baseline with the "
                  "current bench binary.", file=sys.stderr)
            sys.exit(1)


def load_pair(args):
    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)
    check_meta(split_meta(baseline), split_meta(current))
    return baseline, current


def print_diff_table(baseline, current, key_header="metric", key_width=28,
                     val_width=10, marker=None):
    """Prints the union of both key sets, sorted, with relative deltas.

    Keys only in the current run print as (new); keys that vanished print
    as (gone) — whether either fails is the caller's gate policy.
    `marker(key, base, cur)` may return a suffix (e.g. "  <-- REGRESSION")
    for rows present on both sides.
    """
    print(f"{key_header:<{key_width}} {'baseline':>{val_width}} "
          f"{'current':>{val_width}} {'delta':>8}")
    for key in sorted(set(baseline) | set(current)):
        base = baseline.get(key)
        cur = current.get(key)
        if base is None:
            print(f"{key:<{key_width}} {'(new)':>{val_width}} "
                  f"{cur:>{val_width}}")
        elif cur is None:
            print(f"{key:<{key_width}} {base:>{val_width}} "
                  f"{'(gone)':>{val_width}}")
        else:
            delta = (cur - base) / base if base else 0.0
            note = marker(key, base, cur) if marker else ""
            print(f"{key:<{key_width}} {base:>{val_width}} "
                  f"{cur:>{val_width}} {delta:>+8.1%}{note}")


def finish(failures, label, ok_message):
    """Prints the verdict and returns the process exit code."""
    if failures:
        print(f"\n{label}:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\n{ok_message}")
    return 0
