// E5 — Theorem 1 as a scaling experiment: given an execution graph, the
// OVERLAP operation list is polynomial while exact one-port orchestration
// (order enumeration) is exponential in the port degrees; the heuristic's
// gap to the busy-time lower bound quantifies what the NP-hardness costs in
// practice.
//
// E5b measures the pooled order search: the exact enumeration and the
// seeded local-search restarts fan their constraint-system solves out over
// the shared thread pool and must return the serial result bit-identically.
// `--serial` forces every registered benchmark into serial mode.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <thread>

#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/cost_model.hpp"
#include "src/sched/inorder.hpp"
#include "src/sched/outorder.hpp"
#include "src/sched/overlap.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_instances.hpp"

/// Every global operator new, counted. This is ground truth for the
/// memory-discipline tables: the engine's own scratchHeapAllocs counter
/// tracks buffer-growth events it knows about, while this counts every
/// heap allocation the process makes — temporaries, node-based containers,
/// anything the arena work missed.
std::atomic<std::size_t> g_heapNews{0};

void* operator new(std::size_t sz) {
  g_heapNews.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) { return ::operator new(sz); }
void* operator new(std::size_t sz, std::align_val_t al) {
  g_heapNews.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (sz + static_cast<std::size_t>(al) - 1) &
                                       ~(static_cast<std::size_t>(al) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz, std::align_val_t al) {
  return ::operator new(sz, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace fsw;

bool g_serial = false;  ///< --serial: force every benchmark serial

ThreadPool* benchPool() {
  return g_serial ? nullptr : &ThreadPool::shared();
}

Application makeApp(std::size_t n, std::uint64_t seed) {
  Prng rng(seed);
  WorkloadSpec spec;
  spec.n = n;
  return randomApplication(spec, rng);
}

void printGapTable() {
  std::printf(
      "E5: one-port orchestration, exact vs heuristic gap to the busy bound\n");
  std::printf("%-4s %-10s %-10s %-10s %-10s\n", "n", "bound", "exact",
              "heuristic", "combos");
  for (const std::size_t n : {3u, 4u, 5u, 6u}) {
    Prng rng(7000 + n);
    WorkloadSpec spec;
    spec.n = n;
    const auto app = randomApplication(spec, rng);
    const auto g = randomLayeredDag(app, 2, 3, rng);
    const CostModel cm(app, g);
    OrchestrationOptions exact;
    exact.exactCap = 2000000;
    exact.pool = benchPool();
    OrchestrationOptions heur;
    heur.exactCap = 1;  // force the heuristic path
    heur.localSearchIters = 100;
    heur.pool = benchPool();
    const auto re = inorderOrchestratePeriod(app, g, exact);
    const auto rh = inorderOrchestratePeriod(app, g, heur);
    std::printf("%-4zu %-10.4f %-10.4f %-10.4f %-10zu\n", n,
                cm.periodLowerBound(CommModel::InOrder), re.value, rh.value,
                countPortOrders(g, 2000000));
  }
  std::printf("\n");
}

/// E5b: pooled vs serial order search on one fixed execution graph.
/// Returns false when any pooled result diverged from the serial one.
[[nodiscard]] bool printOrderSearchSpeedupTable() {
  bool allIdentical = true;
  std::printf("E5b: pooled order search speedup (%u hardware threads)\n",
              std::thread::hardware_concurrency());
  std::printf("%-4s %-12s %-12s %-12s %-9s %-9s\n", "n", "path",
              "serial[ms]", "pooled[ms]", "speedup", "identical");
  for (const std::size_t n : {5u, 6u}) {
    Prng rng(7500 + n);
    const auto app = makeApp(n, 7500 + n);
    const auto g = randomLayeredDag(app, 2, 3, rng);
    for (const bool exactPath : {true, false}) {
      OrchestrationOptions serial;
      serial.exactCap = exactPath ? 2000000 : 1;
      serial.localSearchIters = 300;
      OrchestrationOptions pooled = serial;
      pooled.pool = &ThreadPool::shared();

      const auto t0 = std::chrono::steady_clock::now();
      const auto rs = inorderOrchestratePeriod(app, g, serial);
      const auto t1 = std::chrono::steady_clock::now();
      const auto rp = inorderOrchestratePeriod(app, g, pooled);
      const auto t2 = std::chrono::steady_clock::now();

      const double serialMs =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      const double pooledMs =
          std::chrono::duration<double, std::milli>(t2 - t1).count();
      allIdentical = allIdentical && rs.value == rp.value;
      std::printf("%-4zu %-12s %-12.1f %-12.1f %-9.2fx %-9s\n", n,
                  exactPath ? "exact" : "local-search", serialMs, pooledMs,
                  serialMs / pooledMs,
                  rs.value == rp.value ? "yes" : "NO!");
    }
  }
  std::printf("\n");
  return allIdentical;
}

/// E5c: the hot-path memory discipline, measured two ways per search —
/// the engine's own growth-event counter (scratchHeapAllocs / evalProbes)
/// and ground-truth operator-new calls per probe. A steady-state search
/// should sit far below one allocation per probe on both columns.
void printMemoryDisciplineTable() {
  std::printf("E5c: order-search memory discipline (per-probe allocations)\n");
  std::printf("%-4s %-12s %-9s %-12s %-12s %-12s %-12s\n", "n", "path",
              "probes", "scratch", "scratch/p", "news/p", "arena[KiB]");
  struct Case {
    bool exactPath;
    std::size_t n;
  };
  for (const auto& [exactPath, n] :
       {Case{true, 5}, Case{true, 6}, Case{false, 8}, Case{false, 16}}) {
    {
      Prng rng(7500 + n);
      const auto app = makeApp(n, 7500 + n);
      const auto g = randomLayeredDag(app, 2, 3, rng);
      std::atomic<std::size_t> probes{0};
      std::atomic<std::size_t> scratch{0};
      std::atomic<std::size_t> arenaHigh{0};
      OrchestrationOptions opt;
      opt.exactCap = exactPath ? 2000000 : 1;
      opt.localSearchIters = 300;
      opt.pool = benchPool();
      opt.evalProbes = &probes;
      opt.scratchHeapAllocs = &scratch;
      opt.arenaBytesHighWater = &arenaHigh;
      // One warm run charges the pool/workload setup, then the measured
      // run starts from the allocator steady state a server would see.
      (void)inorderOrchestratePeriod(app, g, opt);
      probes.store(0);
      scratch.store(0);
      const std::size_t newsBefore =
          g_heapNews.load(std::memory_order_relaxed);
      const auto r = inorderOrchestratePeriod(app, g, opt);
      const std::size_t news =
          g_heapNews.load(std::memory_order_relaxed) - newsBefore;
      benchmark::DoNotOptimize(r.value);
      const double p = probes.load() > 0 ? static_cast<double>(probes.load())
                                         : 1.0;
      std::printf("%-4zu %-12s %-9zu %-12zu %-12.4f %-12.4f %-12.1f\n", n,
                  exactPath ? "exact" : "local-search", probes.load(),
                  scratch.load(), static_cast<double>(scratch.load()) / p,
                  static_cast<double>(news) / p,
                  static_cast<double>(arenaHigh.load()) / 1024.0);
    }
  }
  std::printf("\n");
}

/// E5d: sound incumbent pruning on the OUTORDER search — the engine's
/// portfolio scenario replayed directly against the orchestrator. Each case
/// solves a portfolio of candidate graphs twice: unbounded (the reference)
/// and with the running best final value as the incumbent (the seed/repair
/// bound split of OutorderOptions::upperBound). Soundness contract checked
/// per candidate: a bounded solve either returns the unbounded winner
/// bit-identically or prunes to +inf only when the reference value strictly
/// exceeds the incumbent it ran under — so the portfolio winner can never
/// change, only cost less. Returns false (-> exit 1) when any row breaks
/// identity or when no case recorded a seed-phase abort (the pruning
/// machinery silently dead). `jsonPath`, when set, receives the
/// deterministic counters for bench/check_pruning.py.
[[nodiscard]] bool printPruningTable(const char* jsonPath) {
  std::printf("E5d: OUTORDER incumbent pruning (seed/repair bound split)\n");
  std::printf("%-7s %-6s %-10s %-12s %-12s %-9s %-7s %-7s %-9s\n", "case",
              "cands", "winner", "unbnd[ms]", "bounded[ms]", "speedup",
              "seedAb", "repAb", "identical");

  struct Case {
    std::string name;
    Application app;
    std::vector<ExecutionGraph> graphs;
  };
  std::vector<Case> cases;
  {
    // The paper's Section 2.3 services, chain candidate first: the chain's
    // OUTORDER optimum (6) undercuts the diamond's (7), so the diamond runs
    // under a dominating incumbent and must prune — a deterministic
    // incumbent abort on a paper instance.
    const auto pi = sec23Example();
    Case c{"sec23", pi.app, {}};
    c.graphs.push_back(ExecutionGraph::chain({0, 1, 2, 3, 4}));
    c.graphs.push_back(pi.graph);
    cases.push_back(std::move(c));
  }
  for (const std::size_t n : {5u, 6u}) {
    Prng rng(8200 + n);
    Case c{"rand" + std::to_string(n), makeApp(n, 8200 + n), {}};
    for (int k = 0; k < 3; ++k) {
      c.graphs.push_back(randomLayeredDag(c.app, 2, 3, rng));
    }
    cases.push_back(std::move(c));
  }

  bool allIdentical = true;
  std::size_t totalSeedAborts = 0;
  std::string json =
      "{\n  \"schema\": \"fsw-bench-pruning\",\n  \"bench_version\": 1,\n";
  for (const Case& c : cases) {
    OutorderOptions base;
    base.inorder.exactCap = 20000;
    base.inorder.localSearchIters = 100;
    base.inorder.pool = benchPool();
    base.restarts = 8;
    base.repairIters = 200;
    base.bisectSteps = 8;
    base.seed = 17;
    base.pool = benchPool();

    // Reference pass: every candidate unbounded.
    std::vector<double> reference;
    const auto t0 = std::chrono::steady_clock::now();
    for (const ExecutionGraph& g : c.graphs) {
      reference.push_back(outorderOrchestratePeriod(c.app, g, base).value);
    }
    const auto t1 = std::chrono::steady_clock::now();

    // Bounded pass: the running best final value is the incumbent, exactly
    // as PlanEngine::solveOne threads its tightening bound through ranks.
    std::atomic<std::size_t> seedAborts{0};
    std::atomic<std::size_t> repairAborts{0};
    std::vector<double> bounded;
    bool identical = true;
    double incumbent = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < c.graphs.size(); ++k) {
      OutorderOptions opt = base;
      opt.upperBound = incumbent;
      opt.seedBoundAborts = &seedAborts;
      opt.repairBoundAborts = &repairAborts;
      const double v =
          outorderOrchestratePeriod(c.app, c.graphs[k], opt).value;
      bounded.push_back(v);
      if (std::isfinite(v)) {
        identical = identical && v == reference[k];
        incumbent = std::min(incumbent, v);
      } else {
        // A prune is sound only when the incumbent already dominated.
        identical = identical && reference[k] > incumbent;
      }
    }
    const auto t2 = std::chrono::steady_clock::now();

    // The portfolio winner must survive pruning untouched.
    double refBest = std::numeric_limits<double>::infinity();
    for (const double v : reference) refBest = std::min(refBest, v);
    identical = identical && incumbent == refBest;
    allIdentical = allIdentical && identical;
    totalSeedAborts += seedAborts.load();

    std::size_t pruned = 0;
    for (const double v : bounded) pruned += std::isfinite(v) ? 0 : 1;
    const double unboundedMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double boundedMs =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    std::printf("%-7s %-6zu %-10.4f %-12.1f %-12.1f %-9.2fx %-7zu %-7zu %-9s\n",
                c.name.c_str(), c.graphs.size(), refBest, unboundedMs,
                boundedMs, unboundedMs / boundedMs, seedAborts.load(),
                repairAborts.load(), identical ? "yes" : "NO!");
    json += "  \"" + c.name +
            "_seed_aborts\": " + std::to_string(seedAborts.load()) + ",\n";
    json += "  \"" + c.name +
            "_repair_aborts\": " + std::to_string(repairAborts.load()) +
            ",\n";
    json += "  \"" + c.name + "_pruned\": " + std::to_string(pruned) + ",\n";
    json += "  \"" + c.name +
            "_identical\": " + std::string(identical ? "1" : "0") + ",\n";
  }
  json.replace(json.size() - 2, 1, "");  // drop the trailing comma
  json += "}\n";
  if (jsonPath != nullptr) {
    if (std::FILE* f = std::fopen(jsonPath, "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("(pruning counters written to %s)\n", jsonPath);
    } else {
      std::printf("(FAILED to open %s for the pruning counters)\n", jsonPath);
      allIdentical = false;
    }
  }
  if (totalSeedAborts == 0) {
    std::printf("E5d FAILURE: no seed-phase bound aborts recorded — the "
                "derived seed bound never pruned\n");
  }
  std::printf("\n");
  return allIdentical && totalSeedAborts > 0;
}

void BM_OverlapOrchestration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(1234);
  const auto app = makeApp(n, 99);
  const auto g = randomLayeredDag(app, 3, 3, rng);
  for (auto _ : state) {
    auto ol = overlapPeriodSchedule(app, g);
    benchmark::DoNotOptimize(ol.period());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_OverlapOrchestration)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_InorderExactOrchestration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(77);
  const auto app = makeApp(n, 42);
  const auto g = randomLayeredDag(app, 2, 2, rng);
  std::atomic<std::size_t> probes{0};
  std::atomic<std::size_t> scratch{0};
  OrchestrationOptions opt;
  opt.exactCap = 200000;
  opt.pool = benchPool();
  opt.evalProbes = &probes;
  opt.scratchHeapAllocs = &scratch;
  const std::size_t newsBefore = g_heapNews.load(std::memory_order_relaxed);
  for (auto _ : state) {
    auto r = inorderOrchestratePeriod(app, g, opt);
    benchmark::DoNotOptimize(r.value);
  }
  const auto news = static_cast<double>(
      g_heapNews.load(std::memory_order_relaxed) - newsBefore);
  const auto p =
      probes.load() > 0 ? static_cast<double>(probes.load()) : 1.0;
  state.counters["probes"] = static_cast<double>(probes.load());
  state.counters["scratch_allocs_per_probe"] =
      static_cast<double>(scratch.load()) / p;
  state.counters["news_per_probe"] = news / p;
}
BENCHMARK(BM_InorderExactOrchestration)->DenseRange(3, 6);

void BM_InorderHeuristicOrchestration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(78);
  const auto app = makeApp(n, 43);
  const auto g = randomLayeredDag(app, 3, 3, rng);
  std::atomic<std::size_t> probes{0};
  std::atomic<std::size_t> scratch{0};
  OrchestrationOptions opt;
  opt.exactCap = 1;
  opt.localSearchIters = 50;
  opt.pool = benchPool();
  opt.evalProbes = &probes;
  opt.scratchHeapAllocs = &scratch;
  const std::size_t newsBefore = g_heapNews.load(std::memory_order_relaxed);
  for (auto _ : state) {
    auto r = inorderOrchestratePeriod(app, g, opt);
    benchmark::DoNotOptimize(r.value);
  }
  const auto news = static_cast<double>(
      g_heapNews.load(std::memory_order_relaxed) - newsBefore);
  const auto p =
      probes.load() > 0 ? static_cast<double>(probes.load()) : 1.0;
  state.counters["probes"] = static_cast<double>(probes.load());
  state.counters["scratch_allocs_per_probe"] =
      static_cast<double>(scratch.load()) / p;
  state.counters["news_per_probe"] = news / p;
}
BENCHMARK(BM_InorderHeuristicOrchestration)->RangeMultiplier(2)->Range(8, 32);

}  // namespace

int main(int argc, char** argv) {
  g_serial = fswbench::stripFlag(argc, argv, "--serial");
  const char* pruningJson =
      fswbench::stripValueFlag(argc, argv, "--pruning_json");
  printGapTable();
  printMemoryDisciplineTable();
  bool identical = true;
  if (g_serial) {
    std::printf("(--serial: order-search pool disabled for all benchmarks)\n\n");
  } else {
    identical = printOrderSearchSpeedupTable();
  }
  identical = printPruningTable(pruningJson) && identical;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return identical ? 0 : 1;
}
