// E5 — Theorem 1 as a scaling experiment: given an execution graph, the
// OVERLAP operation list is polynomial while exact one-port orchestration
// (order enumeration) is exponential in the port degrees; the heuristic's
// gap to the busy-time lower bound quantifies what the NP-hardness costs in
// practice.
//
// E5b measures the pooled order search: the exact enumeration and the
// seeded local-search restarts fan their constraint-system solves out over
// the shared thread pool and must return the serial result bit-identically.
// `--serial` forces every registered benchmark into serial mode.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <thread>

#include "bench/bench_util.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/cost_model.hpp"
#include "src/sched/inorder.hpp"
#include "src/sched/overlap.hpp"
#include "src/workload/generator.hpp"

/// Every global operator new, counted. This is ground truth for the
/// memory-discipline tables: the engine's own scratchHeapAllocs counter
/// tracks buffer-growth events it knows about, while this counts every
/// heap allocation the process makes — temporaries, node-based containers,
/// anything the arena work missed.
std::atomic<std::size_t> g_heapNews{0};

void* operator new(std::size_t sz) {
  g_heapNews.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) { return ::operator new(sz); }
void* operator new(std::size_t sz, std::align_val_t al) {
  g_heapNews.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (sz + static_cast<std::size_t>(al) - 1) &
                                       ~(static_cast<std::size_t>(al) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz, std::align_val_t al) {
  return ::operator new(sz, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace fsw;

bool g_serial = false;  ///< --serial: force every benchmark serial

ThreadPool* benchPool() {
  return g_serial ? nullptr : &ThreadPool::shared();
}

Application makeApp(std::size_t n, std::uint64_t seed) {
  Prng rng(seed);
  WorkloadSpec spec;
  spec.n = n;
  return randomApplication(spec, rng);
}

void printGapTable() {
  std::printf(
      "E5: one-port orchestration, exact vs heuristic gap to the busy bound\n");
  std::printf("%-4s %-10s %-10s %-10s %-10s\n", "n", "bound", "exact",
              "heuristic", "combos");
  for (const std::size_t n : {3u, 4u, 5u, 6u}) {
    Prng rng(7000 + n);
    WorkloadSpec spec;
    spec.n = n;
    const auto app = randomApplication(spec, rng);
    const auto g = randomLayeredDag(app, 2, 3, rng);
    const CostModel cm(app, g);
    OrchestrationOptions exact;
    exact.exactCap = 2000000;
    exact.pool = benchPool();
    OrchestrationOptions heur;
    heur.exactCap = 1;  // force the heuristic path
    heur.localSearchIters = 100;
    heur.pool = benchPool();
    const auto re = inorderOrchestratePeriod(app, g, exact);
    const auto rh = inorderOrchestratePeriod(app, g, heur);
    std::printf("%-4zu %-10.4f %-10.4f %-10.4f %-10zu\n", n,
                cm.periodLowerBound(CommModel::InOrder), re.value, rh.value,
                countPortOrders(g, 2000000));
  }
  std::printf("\n");
}

/// E5b: pooled vs serial order search on one fixed execution graph.
/// Returns false when any pooled result diverged from the serial one.
[[nodiscard]] bool printOrderSearchSpeedupTable() {
  bool allIdentical = true;
  std::printf("E5b: pooled order search speedup (%u hardware threads)\n",
              std::thread::hardware_concurrency());
  std::printf("%-4s %-12s %-12s %-12s %-9s %-9s\n", "n", "path",
              "serial[ms]", "pooled[ms]", "speedup", "identical");
  for (const std::size_t n : {5u, 6u}) {
    Prng rng(7500 + n);
    const auto app = makeApp(n, 7500 + n);
    const auto g = randomLayeredDag(app, 2, 3, rng);
    for (const bool exactPath : {true, false}) {
      OrchestrationOptions serial;
      serial.exactCap = exactPath ? 2000000 : 1;
      serial.localSearchIters = 300;
      OrchestrationOptions pooled = serial;
      pooled.pool = &ThreadPool::shared();

      const auto t0 = std::chrono::steady_clock::now();
      const auto rs = inorderOrchestratePeriod(app, g, serial);
      const auto t1 = std::chrono::steady_clock::now();
      const auto rp = inorderOrchestratePeriod(app, g, pooled);
      const auto t2 = std::chrono::steady_clock::now();

      const double serialMs =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      const double pooledMs =
          std::chrono::duration<double, std::milli>(t2 - t1).count();
      allIdentical = allIdentical && rs.value == rp.value;
      std::printf("%-4zu %-12s %-12.1f %-12.1f %-9.2fx %-9s\n", n,
                  exactPath ? "exact" : "local-search", serialMs, pooledMs,
                  serialMs / pooledMs,
                  rs.value == rp.value ? "yes" : "NO!");
    }
  }
  std::printf("\n");
  return allIdentical;
}

/// E5c: the hot-path memory discipline, measured two ways per search —
/// the engine's own growth-event counter (scratchHeapAllocs / evalProbes)
/// and ground-truth operator-new calls per probe. A steady-state search
/// should sit far below one allocation per probe on both columns.
void printMemoryDisciplineTable() {
  std::printf("E5c: order-search memory discipline (per-probe allocations)\n");
  std::printf("%-4s %-12s %-9s %-12s %-12s %-12s %-12s\n", "n", "path",
              "probes", "scratch", "scratch/p", "news/p", "arena[KiB]");
  struct Case {
    bool exactPath;
    std::size_t n;
  };
  for (const auto& [exactPath, n] :
       {Case{true, 5}, Case{true, 6}, Case{false, 8}, Case{false, 16}}) {
    {
      Prng rng(7500 + n);
      const auto app = makeApp(n, 7500 + n);
      const auto g = randomLayeredDag(app, 2, 3, rng);
      std::atomic<std::size_t> probes{0};
      std::atomic<std::size_t> scratch{0};
      std::atomic<std::size_t> arenaHigh{0};
      OrchestrationOptions opt;
      opt.exactCap = exactPath ? 2000000 : 1;
      opt.localSearchIters = 300;
      opt.pool = benchPool();
      opt.evalProbes = &probes;
      opt.scratchHeapAllocs = &scratch;
      opt.arenaBytesHighWater = &arenaHigh;
      // One warm run charges the pool/workload setup, then the measured
      // run starts from the allocator steady state a server would see.
      (void)inorderOrchestratePeriod(app, g, opt);
      probes.store(0);
      scratch.store(0);
      const std::size_t newsBefore =
          g_heapNews.load(std::memory_order_relaxed);
      const auto r = inorderOrchestratePeriod(app, g, opt);
      const std::size_t news =
          g_heapNews.load(std::memory_order_relaxed) - newsBefore;
      benchmark::DoNotOptimize(r.value);
      const double p = probes.load() > 0 ? static_cast<double>(probes.load())
                                         : 1.0;
      std::printf("%-4zu %-12s %-9zu %-12zu %-12.4f %-12.4f %-12.1f\n", n,
                  exactPath ? "exact" : "local-search", probes.load(),
                  scratch.load(), static_cast<double>(scratch.load()) / p,
                  static_cast<double>(news) / p,
                  static_cast<double>(arenaHigh.load()) / 1024.0);
    }
  }
  std::printf("\n");
}

void BM_OverlapOrchestration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(1234);
  const auto app = makeApp(n, 99);
  const auto g = randomLayeredDag(app, 3, 3, rng);
  for (auto _ : state) {
    auto ol = overlapPeriodSchedule(app, g);
    benchmark::DoNotOptimize(ol.period());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_OverlapOrchestration)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_InorderExactOrchestration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(77);
  const auto app = makeApp(n, 42);
  const auto g = randomLayeredDag(app, 2, 2, rng);
  std::atomic<std::size_t> probes{0};
  std::atomic<std::size_t> scratch{0};
  OrchestrationOptions opt;
  opt.exactCap = 200000;
  opt.pool = benchPool();
  opt.evalProbes = &probes;
  opt.scratchHeapAllocs = &scratch;
  const std::size_t newsBefore = g_heapNews.load(std::memory_order_relaxed);
  for (auto _ : state) {
    auto r = inorderOrchestratePeriod(app, g, opt);
    benchmark::DoNotOptimize(r.value);
  }
  const auto news = static_cast<double>(
      g_heapNews.load(std::memory_order_relaxed) - newsBefore);
  const auto p =
      probes.load() > 0 ? static_cast<double>(probes.load()) : 1.0;
  state.counters["probes"] = static_cast<double>(probes.load());
  state.counters["scratch_allocs_per_probe"] =
      static_cast<double>(scratch.load()) / p;
  state.counters["news_per_probe"] = news / p;
}
BENCHMARK(BM_InorderExactOrchestration)->DenseRange(3, 6);

void BM_InorderHeuristicOrchestration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(78);
  const auto app = makeApp(n, 43);
  const auto g = randomLayeredDag(app, 3, 3, rng);
  std::atomic<std::size_t> probes{0};
  std::atomic<std::size_t> scratch{0};
  OrchestrationOptions opt;
  opt.exactCap = 1;
  opt.localSearchIters = 50;
  opt.pool = benchPool();
  opt.evalProbes = &probes;
  opt.scratchHeapAllocs = &scratch;
  const std::size_t newsBefore = g_heapNews.load(std::memory_order_relaxed);
  for (auto _ : state) {
    auto r = inorderOrchestratePeriod(app, g, opt);
    benchmark::DoNotOptimize(r.value);
  }
  const auto news = static_cast<double>(
      g_heapNews.load(std::memory_order_relaxed) - newsBefore);
  const auto p =
      probes.load() > 0 ? static_cast<double>(probes.load()) : 1.0;
  state.counters["probes"] = static_cast<double>(probes.load());
  state.counters["scratch_allocs_per_probe"] =
      static_cast<double>(scratch.load()) / p;
  state.counters["news_per_probe"] = news / p;
}
BENCHMARK(BM_InorderHeuristicOrchestration)->RangeMultiplier(2)->Range(8, 32);

}  // namespace

int main(int argc, char** argv) {
  g_serial = fswbench::stripFlag(argc, argv, "--serial");
  printGapTable();
  printMemoryDisciplineTable();
  bool identical = true;
  if (g_serial) {
    std::printf("(--serial: order-search pool disabled for all benchmarks)\n\n");
  } else {
    identical = printOrderSearchSpeedupTable();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return identical ? 0 : 1;
}
