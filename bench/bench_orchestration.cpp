// E5 — Theorem 1 as a scaling experiment: given an execution graph, the
// OVERLAP operation list is polynomial while exact one-port orchestration
// (order enumeration) is exponential in the port degrees; the heuristic's
// gap to the busy-time lower bound quantifies what the NP-hardness costs in
// practice.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/core/cost_model.hpp"
#include "src/sched/inorder.hpp"
#include "src/sched/overlap.hpp"
#include "src/workload/generator.hpp"

namespace {

using namespace fsw;

Application makeApp(std::size_t n, std::uint64_t seed) {
  Prng rng(seed);
  WorkloadSpec spec;
  spec.n = n;
  return randomApplication(spec, rng);
}

void printGapTable() {
  std::printf(
      "E5: one-port orchestration, exact vs heuristic gap to the busy bound\n");
  std::printf("%-4s %-10s %-10s %-10s %-10s\n", "n", "bound", "exact",
              "heuristic", "combos");
  for (const std::size_t n : {3u, 4u, 5u, 6u}) {
    Prng rng(7000 + n);
    WorkloadSpec spec;
    spec.n = n;
    const auto app = randomApplication(spec, rng);
    const auto g = randomLayeredDag(app, 2, 3, rng);
    const CostModel cm(app, g);
    OrchestrationOptions exact;
    exact.exactCap = 2000000;
    OrchestrationOptions heur;
    heur.exactCap = 1;  // force the heuristic path
    heur.localSearchIters = 100;
    const auto re = inorderOrchestratePeriod(app, g, exact);
    const auto rh = inorderOrchestratePeriod(app, g, heur);
    std::printf("%-4zu %-10.4f %-10.4f %-10.4f %-10zu\n", n,
                cm.periodLowerBound(CommModel::InOrder), re.value, rh.value,
                countPortOrders(g, 2000000));
  }
  std::printf("\n");
}

void BM_OverlapOrchestration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(1234);
  const auto app = makeApp(n, 99);
  const auto g = randomLayeredDag(app, 3, 3, rng);
  for (auto _ : state) {
    auto ol = overlapPeriodSchedule(app, g);
    benchmark::DoNotOptimize(ol.period());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_OverlapOrchestration)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_InorderExactOrchestration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(77);
  const auto app = makeApp(n, 42);
  const auto g = randomLayeredDag(app, 2, 2, rng);
  OrchestrationOptions opt;
  opt.exactCap = 200000;
  for (auto _ : state) {
    auto r = inorderOrchestratePeriod(app, g, opt);
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_InorderExactOrchestration)->DenseRange(3, 6);

void BM_InorderHeuristicOrchestration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(78);
  const auto app = makeApp(n, 43);
  const auto g = randomLayeredDag(app, 3, 3, rng);
  OrchestrationOptions opt;
  opt.exactCap = 1;
  opt.localSearchIters = 50;
  for (auto _ : state) {
    auto r = inorderOrchestratePeriod(app, g, opt);
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_InorderHeuristicOrchestration)->RangeMultiplier(2)->Range(8, 32);

}  // namespace

int main(int argc, char** argv) {
  printGapTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
