// E6 — Props 8/16 chain greedies: optimality against brute force at small n
// (printed), comm-aware vs the no-communication baseline of [1], and the
// O(n log n) scaling of the greedy itself.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <limits>

#include "src/common/util.hpp"
#include "src/core/cost_model.hpp"
#include "src/opt/chain.hpp"
#include "src/workload/generator.hpp"

namespace {

using namespace fsw;

void printOptimalityTable() {
  std::printf("E6: chain greedies vs brute force (20 random instances each)\n");
  std::printf("%-10s %-10s %-12s\n", "objective", "model", "greedy=opt");
  for (const CommModel m : kAllModels) {
    int hits = 0;
    Prng rng(600 + static_cast<int>(m));
    for (int trial = 0; trial < 20; ++trial) {
      WorkloadSpec spec;
      spec.n = 6;
      spec.filterFraction = 0.5;
      const auto app = randomApplication(spec, rng);
      const double gv =
          chainPeriodValue(app, chainOrderPeriod(app, m), m);
      double bv = std::numeric_limits<double>::infinity();
      forEachPermutation(app.size(), [&](const std::vector<std::size_t>& p) {
        std::vector<NodeId> order(p.begin(), p.end());
        bv = std::min(bv, chainPeriodValue(app, order, m));
        return true;
      });
      if (almostEqual(gv, bv, 1e-9)) ++hits;
    }
    std::printf("%-10s %-10s %d/20\n", "period", name(m).data(), hits);
  }
  {
    int hits = 0;
    Prng rng(777);
    for (int trial = 0; trial < 20; ++trial) {
      WorkloadSpec spec;
      spec.n = 6;
      spec.filterFraction = 0.5;
      const auto app = randomApplication(spec, rng);
      const double gv = chainLatencyValue(app, chainOrderLatency(app));
      double bv = std::numeric_limits<double>::infinity();
      forEachPermutation(app.size(), [&](const std::vector<std::size_t>& p) {
        std::vector<NodeId> order(p.begin(), p.end());
        bv = std::min(bv, chainLatencyValue(app, order));
        return true;
      });
      if (almostEqual(gv, bv, 1e-9)) ++hits;
    }
    std::printf("%-10s %-10s %d/20\n", "latency", "(all)", hits);
  }
  std::printf("\n");

  std::printf("comm-aware chain vs no-comm baseline plan, OVERLAP period:\n");
  std::printf("%-6s %-14s %-14s %-14s\n", "n", "baseline plan", "chain greedy",
              "ratio");
  for (const std::size_t n : {8u, 16u, 32u, 64u}) {
    Prng rng(640 + n);
    WorkloadSpec spec;
    spec.n = n;
    spec.filterFraction = 0.8;
    const auto app = randomApplication(spec, rng);
    const auto base = noCommBaselineGraph(app);
    const double basePeriod =
        CostModel(app, base).periodLowerBound(CommModel::Overlap);
    const double chain = chainPeriodValue(
        app, chainOrderPeriod(app, CommModel::Overlap), CommModel::Overlap);
    std::printf("%-6zu %-14.4f %-14.4f %-14.3f\n", n, basePeriod, chain,
                basePeriod / chain);
  }
  std::printf("\n");
}

void BM_ChainGreedyPeriod(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(6001);
  WorkloadSpec spec;
  spec.n = n;
  const auto app = randomApplication(spec, rng);
  for (auto _ : state) {
    auto order = chainOrderPeriod(app, CommModel::InOrder);
    benchmark::DoNotOptimize(order.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ChainGreedyPeriod)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

void BM_ChainGreedyLatency(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(6002);
  WorkloadSpec spec;
  spec.n = n;
  const auto app = randomApplication(spec, rng);
  for (auto _ : state) {
    auto order = chainOrderLatency(app);
    benchmark::DoNotOptimize(order.data());
  }
}
BENCHMARK(BM_ChainGreedyLatency)->RangeMultiplier(4)->Range(16, 4096);

void BM_ChainValueEvaluation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(6003);
  WorkloadSpec spec;
  spec.n = n;
  const auto app = randomApplication(spec, rng);
  const auto order = chainOrderPeriod(app, CommModel::Overlap);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        chainPeriodValue(app, order, CommModel::Overlap));
  }
}
BENCHMARK(BM_ChainValueEvaluation)->RangeMultiplier(4)->Range(16, 1024);

}  // namespace

int main(int argc, char** argv) {
  printOptimalityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
