#!/usr/bin/env python3
"""Gate wire-payload sizes against a checked-in baseline.

Usage: check_wire_sizes.py <baseline.json> <current.json> [--tolerance 0.10]

Both files are the flat {"<payload>_bytes_{text,bin}": N} object that
`bench_serving --wire_json <path>` emits (E12: every byte count is the
exact serialized size of a fixed, deterministic payload set, so run-to-run
noise is zero and a tight tolerance is safe).

Fails (exit 1) when any binary payload grows more than `tolerance` above
its baseline — a codec change that quietly fattens the wire — or when a
key present in the baseline disappeared. Shrinking below baseline is
reported but passes; refresh the baseline to lock in the win.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional growth over baseline "
                             "(default 0.10 = 10%%)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    failures = []
    print(f"{'payload':<28} {'baseline':>9} {'current':>9} {'delta':>8}")
    for key in sorted(baseline):
        base = baseline[key]
        if key not in current:
            failures.append(f"{key}: present in baseline but missing from "
                            f"the current run")
            continue
        cur = current[key]
        delta = (cur - base) / base if base else 0.0
        marker = ""
        # Only the binary sizes gate: the text dialect is frozen, so its
        # sizes only move when the payload set itself changes (which is a
        # deliberate bench edit and a baseline refresh).
        if key.endswith("_bin") and cur > base * (1.0 + args.tolerance):
            marker = "  <-- REGRESSION"
            failures.append(
                f"{key}: {base} -> {cur} bytes "
                f"(+{delta:.1%}, tolerance {args.tolerance:.0%})")
        print(f"{key:<28} {base:>9} {cur:>9} {delta:>+8.1%}{marker}")

    for key in sorted(set(current) - set(baseline)):
        print(f"{key:<28} {'(new)':>9} {current[key]:>9}")

    if failures:
        print("\nwire-size regression:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nwire sizes within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
