#!/usr/bin/env python3
"""Gate wire-payload sizes against a checked-in baseline.

Usage: check_wire_sizes.py <baseline.json> <current.json> [--tolerance 0.10]

Both files are the flat {"<payload>_bytes_{text,bin}": N} object that
`bench_serving --wire_json <path>` emits (E12: every byte count is the
exact serialized size of a fixed, deterministic payload set, so run-to-run
noise is zero and a tight tolerance is safe).

Fails (exit 1) when any binary payload grows more than `tolerance` above
its baseline — a codec change that quietly fattens the wire — or when a
key present in the baseline disappeared. Shrinking below baseline is
reported but passes; refresh the baseline to lock in the win.
"""

import sys

import check_baseline


def main() -> int:
    args = check_baseline.make_parser(__doc__, tolerance=0.10).parse_args()
    baseline, current = check_baseline.load_pair(args)

    failures = []

    def gate(key, base, cur):
        # Only the binary sizes gate: the text dialect is frozen, so its
        # sizes only move when the payload set itself changes (which is a
        # deliberate bench edit and a baseline refresh).
        if key.endswith("_bin") and cur > base * (1.0 + args.tolerance):
            delta = (cur - base) / base if base else 0.0
            failures.append(f"{key}: {base} -> {cur} bytes (+{delta:.1%}, "
                            f"tolerance {args.tolerance:.0%})")
            return "  <-- REGRESSION"
        return ""

    check_baseline.print_diff_table(baseline, current, key_header="payload",
                                    val_width=9, marker=gate)
    for key in sorted(set(baseline) - set(current)):
        failures.append(f"{key}: present in baseline but missing from the "
                        f"current run")

    return check_baseline.finish(failures, "wire-size regression",
                                 "wire sizes within tolerance of baseline")


if __name__ == "__main__":
    sys.exit(main())
