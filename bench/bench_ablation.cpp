// E11 — ablations of the library's own design choices (DESIGN.md §5):
//
//   A1: OUTORDER repair search with vs without the INORDER seed;
//   A2: INORDER order search: canonical vs heuristic vs local search;
//   A3: one-port latency: order search vs list-scheduling orders;
//   A4: optimizer candidate portfolio: chain-only vs forest-only vs full.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/core/cost_model.hpp"
#include "src/opt/chain.hpp"
#include "src/opt/heuristics.hpp"
#include "src/opt/optimizer.hpp"
#include "src/sched/outorder.hpp"
#include "src/workload/generator.hpp"
#include "src/workload/paper_instances.hpp"

namespace {

using namespace fsw;

void ablationOutorderSeed() {
  std::printf("A1: OUTORDER orchestration, value of the INORDER seed\n");
  std::printf("%-6s %-12s %-14s %-14s\n", "trial", "lower bound",
              "with seed", "repair only");
  for (int trial = 0; trial < 5; ++trial) {
    Prng rng(9500 + trial);
    WorkloadSpec spec;
    spec.n = 5;
    const auto app = randomApplication(spec, rng);
    const auto g = randomForest(app, rng);
    const CostModel cm(app, g);
    const double lb = cm.periodLowerBound(CommModel::OutOrder);
    OutorderOptions opt;
    opt.restarts = 8;
    opt.bisectSteps = 6;
    const auto seeded = outorderOrchestratePeriod(app, g, opt);
    // Repair-only: probe lambdas by bisection between lb and 3*lb without
    // the INORDER upper bound.
    double repairOnly = 3.0 * lb;
    if (auto ol = outorderRepairAtLambda(app, g, lb, opt)) {
      repairOnly = lb;
    } else {
      double lo = lb;
      double hi = 3.0 * lb;
      for (int s = 0; s < 8; ++s) {
        const double mid = 0.5 * (lo + hi);
        if (outorderRepairAtLambda(app, g, mid, opt)) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      repairOnly = hi;
    }
    std::printf("%-6d %-12.4f %-14.4f %-14.4f\n", trial, lb, seeded.value,
                repairOnly);
  }
  std::printf("\n");
}

void ablationOrderSearch() {
  std::printf(
      "A2: INORDER period by order policy (6 random fork-joins, contended)\n");
  std::printf("%-6s %-12s %-12s %-12s %-12s\n", "trial", "canonical",
              "heuristic", "local", "exact");
  for (int trial = 0; trial < 6; ++trial) {
    Prng rng(9600 + trial);
    WorkloadSpec spec;
    spec.n = 6;
    spec.costLo = 0.2;
    spec.costHi = 8.0;
    const auto app = randomApplication(spec, rng);
    const auto g = forkJoinGraph(app.size());
    const auto canon =
        inorderPeriodForOrders(app, g, PortOrders::canonical(g));
    const auto heur =
        inorderPeriodForOrders(app, g, PortOrders::heuristic(app, g));
    OrchestrationOptions lsOpt;
    lsOpt.exactCap = 1;
    lsOpt.localSearchIters = 120;
    const auto local = inorderOrchestratePeriod(app, g, lsOpt);
    OrchestrationOptions exOpt;
    exOpt.exactCap = 100000;
    const auto exact = inorderOrchestratePeriod(app, g, exOpt);
    std::printf("%-6d %-12.4f %-12.4f %-12.4f %-12.4f\n", trial,
                canon ? canon->value : -1.0, heur ? heur->value : -1.0,
                local.value, exact.value);
  }
  std::printf("\n");
}

void ablationLatencyOrders() {
  std::printf("A3: one-port latency on B.2 by order policy\n");
  const auto pi = counterexampleB2();
  const auto canon =
      oneportLatencyForOrders(pi.app, pi.graph, PortOrders::canonical(pi.graph));
  const auto heur = oneportLatencyForOrders(
      pi.app, pi.graph, PortOrders::heuristic(pi.app, pi.graph));
  const auto list = oneportLatencyForOrders(
      pi.app, pi.graph, PortOrders::listLatency(pi.app, pi.graph));
  std::printf("canonical %.4f | heuristic %.4f | list-scheduling %.4f "
              "(paper: optimum > 20)\n\n",
              canon ? canon->value : -1.0, heur ? heur->value : -1.0,
              list ? list->value : -1.0);
}

void ablationPortfolio() {
  std::printf("A4: optimizer portfolio, OVERLAP MinPeriod surrogate\n");
  std::printf("%-6s %-12s %-12s %-12s\n", "trial", "chain only",
              "forest only", "full");
  for (int trial = 0; trial < 6; ++trial) {
    Prng rng(9700 + trial);
    WorkloadSpec spec;
    spec.n = 8;
    spec.filterFraction = 0.3;  // expander-heavy: chains stop being optimal
    spec.costHi = 10.0;
    const auto app = randomApplication(spec, rng);
    const double chain = chainPeriodValue(
        app, chainOrderPeriod(app, CommModel::Overlap), CommModel::Overlap);
    HeuristicOptions ho;
    ho.seed = 9700 + trial;
    const auto forest =
        annealForest(app, CommModel::Overlap, Objective::Period, ho);
    const double forestV =
        surrogateScore(app, forest, CommModel::Overlap, Objective::Period);
    OptimizerOptions oo;
    oo.exactForestMaxN = 0;
    oo.heuristics = ho;
    const auto full =
        optimizePlan(app, CommModel::Overlap, Objective::Period, oo);
    std::printf("%-6d %-12.4f %-12.4f %-12.4f\n", trial, chain, forestV,
                full.value);
  }
  std::printf("\n");
}

void BM_OutorderSeeded(benchmark::State& state) {
  Prng rng(9800);
  WorkloadSpec spec;
  spec.n = 5;
  const auto app = randomApplication(spec, rng);
  const auto g = randomForest(app, rng);
  OutorderOptions opt;
  opt.restarts = 8;
  for (auto _ : state) {
    auto r = outorderOrchestratePeriod(app, g, opt);
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_OutorderSeeded);

void BM_ListLatencyOrders(benchmark::State& state) {
  const auto pi = counterexampleB2();
  for (auto _ : state) {
    auto po = PortOrders::listLatency(pi.app, pi.graph);
    benchmark::DoNotOptimize(po.flatSize());
  }
}
BENCHMARK(BM_ListLatencyOrders);

}  // namespace

int main(int argc, char** argv) {
  ablationOutorderSeed();
  ablationOrderSearch();
  ablationLatencyOrders();
  ablationPortfolio();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
