#!/usr/bin/env python3
"""Gate the dynamic trace replay (E15) against a checked-in baseline.

Usage: check_replay.py <baseline.json> <current.json> [--tolerance 0.30]

Both files are the flat {"replay_*": N} object that `bench_serving
--replay_json <path>` emits (E15: a 520-event generated trace — bursty
arrivals, hot-stream mutations, one mid-trace host kill — replayed through
a 2-host PlanRouter fleet with near-key warm starts).

Three gates:
  * identity is absolute: every re-solved winner must certify bit-identical
    to its cold serial reference (replay_identical == 1, zero mismatches),
    the codec round trip must be byte-exact, and the host kill must have
    replayed — these are correctness bits, not trajectories;
  * the near-hit count must hold a floor relative to baseline (at least
    half, never zero): losing warm starts silently would regress tail
    latency without failing identity;
  * p95 arrival-to-result latency gates with a relative tolerance plus an
    absolute grace floor (replay latencies ride on solver wall clock, the
    noisiest number here).

Counters that merely drift (aborts, cache hits, store traffic) print in
the diff table for the trajectory artifact but do not gate.
"""

import sys

import check_baseline

# Replay p95 includes real solve time on a shared runner; never fail
# inside this absolute margin.
ABS_GRACE_MS = 1.0

# The near-hit floor: current must keep at least this fraction of the
# baseline's near hits (and at least one).
NEAR_HIT_KEEP = 0.5


def main() -> int:
    args = check_baseline.make_parser(__doc__, tolerance=0.30).parse_args()
    baseline, current = check_baseline.load_pair(args)

    check_baseline.print_diff_table(baseline, current, key_width=26)

    failures = []

    # Correctness bits from the current run.
    if current.get("replay_identical") != 1:
        failures.append(
            f"winner identity broken: replay_identical = "
            f"{current.get('replay_identical')}, replay_mismatches = "
            f"{current.get('replay_mismatches')} — a re-solved winner "
            "diverged from its cold serial reference")
    if current.get("replay_codec_roundtrip") != 1:
        failures.append("trace codec round trip is no longer byte-exact")
    if current.get("replay_host_kills", 0) < 1:
        failures.append("the mid-trace host kill did not replay")

    # The replay must not silently shrink: same seeded trace, same solves.
    base_solves = baseline.get("replay_solves")
    cur_solves = current.get("replay_solves")
    if base_solves is not None and (cur_solves is None
                                    or cur_solves < base_solves):
        failures.append(f"replay shrank: {base_solves} solves in the "
                        f"baseline, {cur_solves} now")

    # Near-hit floor.
    base_near = baseline.get("replay_near_hits", 0)
    cur_near = current.get("replay_near_hits", 0)
    floor = max(1, int(base_near * NEAR_HIT_KEEP))
    if cur_near < floor:
        failures.append(f"near hits collapsed: {base_near} -> {cur_near} "
                        f"(floor {floor} = max(1, {NEAR_HIT_KEEP:.0%} of "
                        "baseline)) — the warm-start path stopped firing")

    # p95 tail.
    base_p95 = baseline.get("replay_p95_ms")
    cur_p95 = current.get("replay_p95_ms")
    if base_p95 is None or cur_p95 is None:
        failures.append("replay_p95_ms missing from "
                        f"{'baseline' if base_p95 is None else 'current'} — "
                        "nothing to gate")
    else:
        ceiling = base_p95 * (1.0 + args.tolerance) + ABS_GRACE_MS
        if cur_p95 > ceiling:
            failures.append(f"replay_p95_ms {base_p95} -> {cur_p95} ms "
                            f"(ceiling {ceiling:.3f} = +{args.tolerance:.0%}"
                            f" + {ABS_GRACE_MS} ms grace)")

    return check_baseline.finish(
        failures, "replay regression",
        f"replay identity holds, {cur_near} near hits (floor {floor}), "
        f"p95 {cur_p95} ms within tolerance")


if __name__ == "__main__":
    sys.exit(main())
