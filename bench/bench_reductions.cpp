// E9 — the reductions as executable artifacts: forward-direction agreement
// (witness meets K) on random solvable RN3DM instances for every gadget,
// plus construction/solve timings.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <numeric>

#include "src/npc/reductions.hpp"
#include "src/npc/two_partition.hpp"
#include "src/sched/inorder.hpp"
#include "src/sched/overlap.hpp"

namespace {

using namespace fsw;

void printAgreement() {
  std::printf("E9: forward-direction agreement, 10 random solvable RN3DM\n");
  std::printf("%-28s %-10s\n", "gadget", "witness meets K");
  int hits2 = 0, hits5 = 0, hits9 = 0, hits13 = 0;
  Prng rng(900);
  for (int trial = 0; trial < 10; ++trial) {
    const auto inst = randomSolvableRn3dm(3 + trial % 3, rng);
    const auto w = solveRn3dm(inst);
    if (!w) continue;
    {
      const auto red = prop2PeriodGadget(inst);
      const auto r = inorderPeriodForOrders(red.app, red.graph,
                                            prop2WitnessOrders(red, *w));
      if (r && r->value <= red.threshold + 1e-6) ++hits2;
    }
    {
      const auto red = prop5MinPeriodGadget(inst);
      const auto g = prop5WitnessGraph(red, *w);
      if (overlapPeriodSchedule(red.app, g).period() <= red.threshold + 1e-9) {
        ++hits5;
      }
    }
    {
      const auto red = prop9LatencyGadget(inst);
      const auto r = oneportLatencyForOrders(red.app, red.graph,
                                             prop9WitnessOrders(red, *w));
      if (r && r->value <= red.threshold + 1e-6) ++hits9;
    }
    {
      const auto red = prop13MinLatencyGadget(inst);
      const auto g = prop13WitnessGraph(red);
      const auto r = oneportLatencyForOrders(red.app, g,
                                             prop13WitnessOrders(red, *w));
      if (r && r->value <= red.threshold + 1e-9) ++hits13;
    }
  }
  std::printf("%-28s %d/10\n", "Prop 2 (period, given EG)", hits2);
  std::printf("%-28s %d/10\n", "Prop 5 (MinPeriod OVERLAP)", hits5);
  std::printf("%-28s %d/10\n", "Prop 9 (latency, fork-join)", hits9);
  std::printf("%-28s %d/10\n", "Prop 13 (MinLatency)", hits13);
  std::printf("\n");
}

void BM_SolveRn3dm(benchmark::State& state) {
  Prng rng(901);
  const auto inst =
      randomSolvableRn3dm(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    auto w = solveRn3dm(inst);
    benchmark::DoNotOptimize(w.has_value());
  }
}
BENCHMARK(BM_SolveRn3dm)->DenseRange(4, 12, 2);

void BM_Prop2GadgetBuildAndSolve(benchmark::State& state) {
  Prng rng(902);
  const auto inst =
      randomSolvableRn3dm(static_cast<std::size_t>(state.range(0)), rng);
  const auto w = solveRn3dm(inst);
  for (auto _ : state) {
    const auto red = prop2PeriodGadget(inst);
    auto r = inorderPeriodForOrders(red.app, red.graph,
                                    prop2WitnessOrders(red, *w));
    benchmark::DoNotOptimize(r->value);
  }
}
BENCHMARK(BM_Prop2GadgetBuildAndSolve)->DenseRange(3, 7);

void BM_Prop9GadgetBuildAndSolve(benchmark::State& state) {
  Prng rng(903);
  const auto inst =
      randomSolvableRn3dm(static_cast<std::size_t>(state.range(0)), rng);
  const auto w = solveRn3dm(inst);
  for (auto _ : state) {
    const auto red = prop9LatencyGadget(inst);
    auto r = oneportLatencyForOrders(red.app, red.graph,
                                     prop9WitnessOrders(red, *w));
    benchmark::DoNotOptimize(r->value);
  }
}
BENCHMARK(BM_Prop9GadgetBuildAndSolve)->DenseRange(3, 9, 3);

void BM_TwoPartitionDp(benchmark::State& state) {
  Prng rng(904);
  std::vector<std::int64_t> xs;
  for (int i = 0; i < state.range(0); ++i) xs.push_back(rng.uniformInt(1, 50));
  if ((std::accumulate(xs.begin(), xs.end(), std::int64_t{0}) % 2) != 0) {
    xs.back() += 1;
  }
  for (auto _ : state) {
    auto w = solveTwoPartition(xs);
    benchmark::DoNotOptimize(w.has_value());
  }
}
BENCHMARK(BM_TwoPartitionDp)->RangeMultiplier(2)->Range(8, 64);

}  // namespace

int main(int argc, char** argv) {
  printAgreement();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
